//! The worker: one thread owning one simulated device.
//!
//! A worker is handed its batch slice (requests pinned to its device by
//! admission control) and executes them sequentially — an MCU runs one
//! inference at a time. It never plans: models arrive as shared
//! [`Deployment`]s (plans memoized, weights owned, built once by the
//! fleet), and the worker opens one [`Session`] per resident model — the
//! device's SRAM plus the model's flashed weights — that serves every
//! request to that model. The per-thread plan-call counter
//! ([`vmcu_plan::telemetry`]) is reported in [`WorkerStats`] so the
//! zero-replanning contract is gated, not just claimed.

use crate::request::{Completion, RequestSpec};
use crate::stats::WorkerStats;
use std::collections::HashMap;
use vmcu::prelude::*;
use vmcu_tensor::random;

/// Deterministic per-model weight seed: requests to the same model must
/// see the same deployed weights on every worker and every run.
pub(crate) fn model_weight_seed(name: &str) -> u64 {
    // FNV-1a over the model name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of one worker's batch slice.
///
/// Results are keyed by the request's *submission slot* (its position in
/// the batch), not by `RequestSpec::id` — ids are caller-supplied and
/// carry no uniqueness guarantee, so routing by slot is what keeps a
/// batch with duplicate ids well-defined.
#[derive(Debug)]
pub(crate) struct WorkerRun {
    /// Completions keyed by submission slot.
    pub completed: Vec<(usize, Completion)>,
    /// Execution failures keyed by submission slot (typed engine errors
    /// rendered to strings; empty in a healthy build).
    pub failed: Vec<(usize, String)>,
    /// Aggregated device statistics.
    pub stats: WorkerStats,
}

/// One simulated device plus its per-model sessions.
#[derive(Debug)]
pub(crate) struct Worker<'a> {
    index: usize,
    /// Shared deployments, one per deployable catalog model.
    deployments: &'a HashMap<String, Deployment>,
    /// One session per model resident on this device.
    sessions: HashMap<String, Session>,
}

impl<'a> Worker<'a> {
    pub(crate) fn new(index: usize, deployments: &'a HashMap<String, Deployment>) -> Self {
        Self {
            index,
            deployments,
            sessions: HashMap::new(),
        }
    }

    /// Executes the worker's slice of the batch (submission slot + spec
    /// pairs) in submission order.
    pub(crate) fn run(mut self, jobs: &[(usize, RequestSpec)]) -> WorkerRun {
        let plan_calls_before = vmcu_plan::telemetry::plan_calls();
        let mut run = WorkerRun {
            completed: Vec::with_capacity(jobs.len()),
            failed: Vec::new(),
            stats: WorkerStats::default(),
        };
        for (slot, job) in jobs {
            // Admission prices RAM only, so in principle a model can be
            // admitted that never deployed (e.g. its firmware image
            // exceeded Flash). Degrade to a typed per-request failure —
            // the legacy per-request execution error — not a panic that
            // would abort the whole batch.
            let Some(deployment) = self.deployments.get(&job.model) else {
                run.failed.push((
                    *slot,
                    format!("model `{}` is not deployed on this fleet", job.model),
                ));
                continue;
            };
            let session = self
                .sessions
                .entry(job.model.clone())
                .or_insert_with(|| deployment.session());
            let input = random::tensor_i8(&deployment.graph().in_shape(), job.seed);
            match session.infer(&input) {
                Ok(report) => {
                    let latency_ms = report.latency_ms();
                    run.stats.executed += 1;
                    run.stats.busy_ms += latency_ms;
                    run.stats.energy_mj += report.energy_mj();
                    for layer in &report.layers {
                        run.stats.counters += layer.exec.counters;
                    }
                    run.completed.push((
                        *slot,
                        Completion {
                            worker: self.index,
                            latency_ms,
                            energy_mj: report.energy_mj(),
                            peak_ram_bytes: report.peak_ram_bytes(),
                        },
                    ));
                }
                Err(e) => run.failed.push((*slot, e.to_string())),
            }
        }
        run.stats.plan_calls = vmcu_plan::telemetry::plan_calls() - plan_calls_before;
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployments_for(models: &[&str]) -> HashMap<String, Deployment> {
        let catalog = crate::catalog::ModelCatalog::standard();
        let engine = Engine::new(Device::stm32_f411re());
        models
            .iter()
            .map(|name| {
                let model = catalog.get(name).expect("model in catalog");
                let weights = model.graph.random_weights(model_weight_seed(name));
                (
                    (*name).to_owned(),
                    engine.deploy(&model.graph, &weights).expect("model fits"),
                )
            })
            .collect()
    }

    #[test]
    fn weight_seeds_are_stable_and_distinct() {
        assert_eq!(model_weight_seed("vww-s5"), model_weight_seed("vww-s5"));
        assert_ne!(model_weight_seed("vww-s5"), model_weight_seed("vww-s6"));
    }

    #[test]
    fn worker_executes_jobs_and_aggregates_device_time() {
        let deployments = deployments_for(&["vww-s5", "demo-linear-net"]);
        let jobs = vec![
            (
                0,
                RequestSpec {
                    id: 0,
                    model: "vww-s5".into(),
                    seed: 1,
                },
            ),
            (
                1,
                RequestSpec {
                    id: 1,
                    model: "vww-s5".into(),
                    seed: 2,
                },
            ),
            (
                2,
                RequestSpec {
                    id: 2,
                    model: "demo-linear-net".into(),
                    seed: 3,
                },
            ),
        ];
        let worker = Worker::new(0, &deployments);
        let run = worker.run(&jobs);
        assert_eq!(run.completed.len(), 3);
        assert!(run.failed.is_empty());
        assert_eq!(run.stats.executed, 3);
        assert!(run.stats.busy_ms > 0.0);
        assert!(run.stats.energy_mj > 0.0);
        assert!(run.stats.counters.macs > 0);
        let total: f64 = run.completed.iter().map(|(_, c)| c.latency_ms).sum();
        assert!((run.stats.busy_ms - total).abs() < 1e-9);
        // The whole point of holding deployments: serving plans nothing.
        assert_eq!(run.stats.plan_calls, 0, "workers must never replan");
    }

    #[test]
    fn worker_results_are_deterministic() {
        let catalog = crate::catalog::ModelCatalog::standard();
        let model = catalog.get("demo-linear-net").unwrap();
        let weights = model
            .graph
            .random_weights(model_weight_seed("demo-linear-net"));
        let deployments: HashMap<String, Deployment> = [(
            "demo-linear-net".to_owned(),
            Engine::new(Device::stm32_f767zi())
                .planner(PlannerKind::TinyEngine)
                .deploy(&model.graph, &weights)
                .unwrap(),
        )]
        .into();
        let jobs = vec![(
            0,
            RequestSpec {
                id: 0,
                model: "demo-linear-net".into(),
                seed: 9,
            },
        )];
        let mk = || Worker::new(0, &deployments).run(&jobs);
        let (a, b) = (mk(), mk());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.stats, b.stats);
    }
}
