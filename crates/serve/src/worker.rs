//! The worker: one thread owning one simulated device.
//!
//! A worker is handed its batch slice (requests pinned to its device by
//! admission control) and executes them sequentially — an MCU runs one
//! inference at a time. It never plans: models arrive as shared
//! [`Deployment`]s (plans memoized, weights owned, built once by the
//! fleet), and the worker opens one [`Session`] per resident model — the
//! device's SRAM plus the model's flashed weights — that serves every
//! request to that model. The per-thread plan-call counter
//! ([`vmcu_plan::telemetry`]) is reported in [`WorkerStats`] so the
//! zero-replanning contract is gated, not just claimed.

use crate::queue::{EdfQueue, QueuedRequest};
use crate::request::{Completion, RequestSpec};
use crate::stats::{OnlineWorkerStats, WorkerStats};
use crate::swap::{Admit, ResidencyLedger};
use std::collections::HashMap;
use vmcu::prelude::*;
use vmcu_tensor::random;

/// Deterministic per-model weight seed: requests to the same model must
/// see the same deployed weights on every worker and every run.
pub(crate) fn model_weight_seed(name: &str) -> u64 {
    // FNV-1a over the model name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of one worker's batch slice.
///
/// Results are keyed by the request's *submission slot* (its position in
/// the batch), not by `RequestSpec::id` — ids are caller-supplied and
/// carry no uniqueness guarantee, so routing by slot is what keeps a
/// batch with duplicate ids well-defined.
#[derive(Debug)]
pub(crate) struct WorkerRun {
    /// Completions keyed by submission slot.
    pub completed: Vec<(usize, Completion)>,
    /// Execution failures keyed by submission slot (typed engine errors
    /// rendered to strings; empty in a healthy build).
    pub failed: Vec<(usize, String)>,
    /// Aggregated device statistics.
    pub stats: WorkerStats,
}

/// One simulated device plus its per-model sessions.
#[derive(Debug)]
pub(crate) struct Worker<'a> {
    index: usize,
    /// Shared deployments, one per deployable catalog model.
    deployments: &'a HashMap<String, Deployment>,
    /// One session per model resident on this device.
    sessions: HashMap<String, Session>,
}

impl<'a> Worker<'a> {
    pub(crate) fn new(index: usize, deployments: &'a HashMap<String, Deployment>) -> Self {
        Self {
            index,
            deployments,
            sessions: HashMap::new(),
        }
    }

    /// Executes the worker's slice of the batch (submission slot + spec
    /// pairs) in submission order.
    pub(crate) fn run(mut self, jobs: &[(usize, RequestSpec)]) -> WorkerRun {
        let plan_calls_before = vmcu_plan::telemetry::plan_calls();
        let mut run = WorkerRun {
            completed: Vec::with_capacity(jobs.len()),
            failed: Vec::new(),
            stats: WorkerStats::default(),
        };
        for (slot, job) in jobs {
            // Admission prices RAM only, so in principle a model can be
            // admitted that never deployed (e.g. its firmware image
            // exceeded Flash). Degrade to a typed per-request failure —
            // the legacy per-request execution error — not a panic that
            // would abort the whole batch.
            let Some(deployment) = self.deployments.get(&job.model) else {
                run.failed.push((
                    *slot,
                    format!("model `{}` is not deployed on this fleet", job.model),
                ));
                continue;
            };
            let session = self
                .sessions
                .entry(job.model.clone())
                .or_insert_with(|| deployment.session());
            let input = random::tensor_i8(&deployment.graph().in_shape(), job.seed);
            match session.infer(&input) {
                Ok(report) => {
                    let latency_ms = report.latency_ms();
                    run.stats.executed += 1;
                    run.stats.busy_ms += latency_ms;
                    run.stats.energy_mj += report.energy_mj();
                    for layer in &report.layers {
                        run.stats.counters += layer.exec.counters;
                    }
                    run.completed.push((
                        *slot,
                        Completion {
                            worker: self.index,
                            latency_ms,
                            energy_mj: report.energy_mj(),
                            peak_ram_bytes: report.peak_ram_bytes(),
                        },
                    ));
                }
                Err(e) => run.failed.push((*slot, e.to_string())),
            }
        }
        run.stats.plan_calls = vmcu_plan::telemetry::plan_calls() - plan_calls_before;
        run
    }
}

/// A request routed to one device's online queue (times in simulated
/// microseconds; `model` is a catalog index).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OnlineJob {
    pub at_us: u64,
    pub deadline_us: u64,
    pub seq: u64,
    pub model: usize,
}

/// The serving surface of one catalog model, resolved once by the
/// fleet: the shared deployment plus its residency footprint and
/// staging price (all derived from the cached plans — no replanning).
#[derive(Debug, Clone)]
pub(crate) struct OnlineModel {
    pub name: String,
    pub deployment: Deployment,
    /// Peak SRAM demand while serving (residency RAM budget share).
    pub ram_bytes: usize,
    /// Firmware image size (residency Flash budget share).
    pub flash_bytes: usize,
    /// Simulated staging price, µs — charged on every staging.
    pub staging_us: u64,
}

/// Calibrated per-model service cost. The simulated cost model is
/// shape-driven — latency and energy do not depend on input *values* —
/// so one real inference per (device, model) prices every request to
/// that model. `tests/serve_online.rs` pins that input-independence.
#[derive(Debug, Clone, Copy)]
struct ServiceProfile {
    service_us: u64,
    energy_mj: f64,
}

/// Result of one device's online run.
#[derive(Debug)]
pub(crate) struct OnlineWorkerRun {
    /// `(completion_us, sojourn_us)` per served request, in completion
    /// order.
    pub completions: Vec<(u64, u64)>,
    pub stats: OnlineWorkerStats,
}

/// Drains one device's arrival lane through an EDF queue with
/// deadline-based shedding and LRU hot-swap.
///
/// The event loop runs on an integer microsecond clock: pull arrivals
/// that have occurred, pop the most urgent queued request, shed it if
/// its deadline already passed, otherwise make its model resident
/// (charging staging time on a swap) and serve it for its calibrated
/// service time. `jobs` must be sorted by arrival time (routing
/// preserves arrival order).
pub(crate) fn run_online(
    models: &[Option<OnlineModel>],
    jobs: &[OnlineJob],
    ram_budget: usize,
    flash_budget: usize,
) -> OnlineWorkerRun {
    let plan_calls_before = vmcu_plan::telemetry::plan_calls();
    let mut stats = OnlineWorkerStats {
        routed: jobs.len(),
        ..Default::default()
    };
    let mut completions = Vec::with_capacity(jobs.len());
    let mut ledger = ResidencyLedger::new(ram_budget, flash_budget);
    let mut sessions: HashMap<usize, Session> = HashMap::new();
    // Calibrated service profiles survive eviction: a model that swaps
    // back in pays staging time again, but never re-calibrates.
    let mut profiles: Vec<Option<Result<ServiceProfile, ()>>> = vec![None; models.len()];
    let mut queue = EdfQueue::new();
    let mut next_arrival = 0usize;
    let mut now: u64 = 0;
    loop {
        while next_arrival < jobs.len() && jobs[next_arrival].at_us <= now {
            let j = jobs[next_arrival];
            queue.push(QueuedRequest {
                deadline_us: j.deadline_us,
                seq: j.seq,
                at_us: j.at_us,
                model: j.model,
            });
            next_arrival += 1;
        }
        let Some(job) = queue.pop() else {
            if next_arrival < jobs.len() {
                // Idle until the next arrival.
                now = now.max(jobs[next_arrival].at_us);
                continue;
            }
            break;
        };
        // Shed-on-deadline: a request whose deadline passed before
        // service could start is dropped, costing no device time.
        if now >= job.deadline_us {
            stats.shed += 1;
            continue;
        }
        let model = models[job.model]
            .as_ref()
            .expect("routing rejects undeployed models");
        // Residency: stage (and possibly hot-swap) before serving. The
        // staging price comes from the Session API surface
        // (`Deployment::staging_ms`), charged exactly once per staging.
        match ledger.request(job.model, model.ram_bytes, model.flash_bytes) {
            Admit::Hit => {}
            Admit::Staged { evicted } => {
                for e in evicted {
                    sessions.remove(&e);
                }
                sessions.insert(job.model, model.deployment.session());
                now += model.staging_us;
                stats.staging_us += model.staging_us;
            }
            // A deployed model always fits an empty device (deploy
            // validated RAM and Flash), so this cannot happen.
            Admit::TooLarge => unreachable!("deployed models fit their device"),
        }
        // Calibrate on first service: one real inference prices the
        // model; every later request reuses the profile.
        let profile = match profiles[job.model] {
            Some(p) => p,
            None => {
                let session = sessions
                    .get_mut(&job.model)
                    .expect("resident models have a session");
                let input = random::tensor_i8(
                    &model.deployment.graph().in_shape(),
                    model_weight_seed(&model.name) ^ 0xCA11_B7A7,
                );
                let measured = session
                    .infer(&input)
                    .map(|report| ServiceProfile {
                        service_us: ((report.latency_ms() * 1e3).round() as u64).max(1),
                        energy_mj: report.energy_mj(),
                    })
                    .map_err(|_| ());
                profiles[job.model] = Some(measured);
                measured
            }
        };
        let Ok(profile) = profile else {
            stats.failed += 1;
            continue;
        };
        now += profile.service_us;
        stats.served += 1;
        stats.busy_us += profile.service_us;
        stats.energy_mj += profile.energy_mj;
        if now > job.deadline_us {
            stats.slo_violations += 1;
        }
        completions.push((now, now - job.at_us));
    }
    stats.clock_us = now;
    stats.stagings = ledger.stagings();
    stats.swaps = ledger.swaps();
    stats.evictions = ledger.evictions();
    stats.plan_calls = vmcu_plan::telemetry::plan_calls() - plan_calls_before;
    OnlineWorkerRun { completions, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployments_for(models: &[&str]) -> HashMap<String, Deployment> {
        let catalog = crate::catalog::ModelCatalog::standard();
        let engine = Engine::new(Device::stm32_f411re());
        models
            .iter()
            .map(|name| {
                let model = catalog.get(name).expect("model in catalog");
                let weights = model.graph.random_weights(model_weight_seed(name));
                (
                    (*name).to_owned(),
                    engine.deploy(&model.graph, &weights).expect("model fits"),
                )
            })
            .collect()
    }

    #[test]
    fn weight_seeds_are_stable_and_distinct() {
        assert_eq!(model_weight_seed("vww-s5"), model_weight_seed("vww-s5"));
        assert_ne!(model_weight_seed("vww-s5"), model_weight_seed("vww-s6"));
    }

    #[test]
    fn worker_executes_jobs_and_aggregates_device_time() {
        let deployments = deployments_for(&["vww-s5", "demo-linear-net"]);
        let jobs = vec![
            (
                0,
                RequestSpec {
                    id: 0,
                    model: "vww-s5".into(),
                    seed: 1,
                },
            ),
            (
                1,
                RequestSpec {
                    id: 1,
                    model: "vww-s5".into(),
                    seed: 2,
                },
            ),
            (
                2,
                RequestSpec {
                    id: 2,
                    model: "demo-linear-net".into(),
                    seed: 3,
                },
            ),
        ];
        let worker = Worker::new(0, &deployments);
        let run = worker.run(&jobs);
        assert_eq!(run.completed.len(), 3);
        assert!(run.failed.is_empty());
        assert_eq!(run.stats.executed, 3);
        assert!(run.stats.busy_ms > 0.0);
        assert!(run.stats.energy_mj > 0.0);
        assert!(run.stats.counters.macs > 0);
        let total: f64 = run.completed.iter().map(|(_, c)| c.latency_ms).sum();
        assert!((run.stats.busy_ms - total).abs() < 1e-9);
        // The whole point of holding deployments: serving plans nothing.
        assert_eq!(run.stats.plan_calls, 0, "workers must never replan");
    }

    fn online_models_for(names: &[&str]) -> Vec<Option<OnlineModel>> {
        let deployments = deployments_for(names);
        names
            .iter()
            .map(|name| {
                let dep = deployments[*name].clone();
                Some(OnlineModel {
                    name: (*name).to_owned(),
                    ram_bytes: dep.peak_demand_bytes(),
                    flash_bytes: dep.image_bytes(),
                    staging_us: (dep.staging_ms() * 1e3).round() as u64,
                    deployment: dep,
                })
            })
            .collect()
    }

    #[test]
    fn online_worker_charges_staging_exactly_once_per_staging() {
        let models = online_models_for(&["vww-s5", "demo-linear-net"]);
        let ram = |m: &Option<OnlineModel>| m.as_ref().unwrap().ram_bytes;
        let staging = |m: &Option<OnlineModel>| m.as_ref().unwrap().staging_us;
        assert!(ram(&models[0]) > 0 && ram(&models[1]) > 0);
        // A RAM budget that fits either model alone but never both:
        // every alternation is a hot swap.
        let ram_budget = ram(&models[0]).max(ram(&models[1]));
        let jobs: Vec<OnlineJob> = (0..4)
            .map(|i| OnlineJob {
                at_us: 0,
                deadline_us: u64::MAX,
                seq: i,
                model: (i % 2) as usize,
            })
            .collect();
        let run = run_online(&models, &jobs, ram_budget, usize::MAX);
        assert_eq!(run.stats.served, 4);
        assert_eq!(run.stats.shed, 0);
        assert_eq!(run.stats.failed, 0);
        // 0,1,0,1 with room for one resident: 4 stagings, the last 3
        // evict (hot swaps).
        assert_eq!(run.stats.stagings, 4);
        assert_eq!(run.stats.swaps, 3);
        assert_eq!(run.stats.evictions, 3);
        // The staging clock charge is exactly stagings × per-model
        // price — once per staging, never more, never less.
        let expected = 2 * staging(&models[0]) + 2 * staging(&models[1]);
        assert_eq!(run.stats.staging_us, expected);
        assert!(run.stats.clock_us >= run.stats.staging_us + run.stats.busy_us);
        assert_eq!(run.stats.plan_calls, 0, "online serving must not plan");
        // And the whole run is deterministic.
        let again = run_online(&models, &jobs, ram_budget, usize::MAX);
        assert_eq!(run.completions, again.completions);
        assert_eq!(run.stats, again.stats);
    }

    #[test]
    fn online_worker_sheds_expired_requests_at_dispatch() {
        let models = online_models_for(&["demo-linear-net"]);
        // Two requests arrive together; the deadline only covers one
        // service time, so EDF serves the more urgent and sheds the
        // other when its turn comes too late.
        let probe = run_online(
            &models,
            &[OnlineJob {
                at_us: 0,
                deadline_us: u64::MAX,
                seq: 0,
                model: 0,
            }],
            usize::MAX,
            usize::MAX,
        );
        let service_us = probe.stats.busy_us;
        assert!(service_us > 0);
        let staging_us = models[0].as_ref().unwrap().staging_us;
        // Deadline lands exactly when the first service completes: the
        // first request finishes on time, the second is expired at
        // dispatch.
        let deadline = staging_us + service_us;
        let jobs: Vec<OnlineJob> = (0..2)
            .map(|i| OnlineJob {
                at_us: 0,
                deadline_us: deadline,
                seq: i,
                model: 0,
            })
            .collect();
        let run = run_online(&models, &jobs, usize::MAX, usize::MAX);
        assert_eq!(run.stats.served, 1);
        assert_eq!(run.stats.shed, 1, "the second request expired in queue");
        assert_eq!(run.stats.slo_violations, 0);
    }

    #[test]
    fn worker_results_are_deterministic() {
        let catalog = crate::catalog::ModelCatalog::standard();
        let model = catalog.get("demo-linear-net").unwrap();
        let weights = model
            .graph
            .random_weights(model_weight_seed("demo-linear-net"));
        let deployments: HashMap<String, Deployment> = [(
            "demo-linear-net".to_owned(),
            Engine::new(Device::stm32_f767zi())
                .planner(PlannerKind::TinyEngine)
                .deploy(&model.graph, &weights)
                .unwrap(),
        )]
        .into();
        let jobs = vec![(
            0,
            RequestSpec {
                id: 0,
                model: "demo-linear-net".into(),
                seed: 9,
            },
        )];
        let mk = || Worker::new(0, &deployments).run(&jobs);
        let (a, b) = (mk(), mk());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.stats, b.stats);
    }
}
