//! The worker: one thread owning one simulated device.
//!
//! A worker is handed its batch slice (requests pinned to its device by
//! admission control) and executes them sequentially — an MCU runs one
//! inference at a time. Across requests it reuses a single
//! [`InferenceScratch`] (the device's SRAM allocation) and a per-model
//! weight cache, mirroring a real deployment where weights are flashed
//! once and stay resident.

use crate::catalog::ModelCatalog;
use crate::request::{Completion, RequestSpec};
use crate::stats::WorkerStats;
use std::collections::HashMap;
use vmcu::prelude::*;
use vmcu_tensor::random;

/// Deterministic per-model weight seed: requests to the same model must
/// see the same deployed weights on every worker and every run.
fn model_weight_seed(name: &str) -> u64 {
    // FNV-1a over the model name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of one worker's batch slice.
///
/// Results are keyed by the request's *submission slot* (its position in
/// the batch), not by `RequestSpec::id` — ids are caller-supplied and
/// carry no uniqueness guarantee, so routing by slot is what keeps a
/// batch with duplicate ids well-defined.
#[derive(Debug)]
pub(crate) struct WorkerRun {
    /// Completions keyed by submission slot.
    pub completed: Vec<(usize, Completion)>,
    /// Execution failures keyed by submission slot (typed engine errors
    /// rendered to strings; empty in a healthy build).
    pub failed: Vec<(usize, String)>,
    /// Aggregated device statistics.
    pub stats: WorkerStats,
}

/// One simulated device plus its reusable execution state.
#[derive(Debug)]
pub(crate) struct Worker {
    index: usize,
    engine: Engine,
    scratch: InferenceScratch,
    weights: HashMap<String, Vec<LayerWeights>>,
}

impl Worker {
    pub(crate) fn new(index: usize, device: Device, kind: PlannerKind) -> Self {
        Self {
            index,
            engine: Engine::new(device).planner(kind),
            scratch: InferenceScratch::new(),
            weights: HashMap::new(),
        }
    }

    /// Executes the worker's slice of the batch (submission slot + spec
    /// pairs) in submission order.
    pub(crate) fn run(
        mut self,
        catalog: &ModelCatalog,
        jobs: &[(usize, RequestSpec)],
    ) -> WorkerRun {
        let mut run = WorkerRun {
            completed: Vec::with_capacity(jobs.len()),
            failed: Vec::new(),
            stats: WorkerStats::default(),
        };
        for (slot, job) in jobs {
            let model = catalog
                .get(&job.model)
                .expect("admission only assigns cataloged models");
            let weights = self
                .weights
                .entry(job.model.clone())
                .or_insert_with(|| model.graph.random_weights(model_weight_seed(&job.model)));
            let input = random::tensor_i8(&model.graph.in_shape(), job.seed);
            match self
                .engine
                .run_graph_scratch(&model.graph, weights, &input, &mut self.scratch)
            {
                Ok(report) => {
                    let latency_ms = report.latency_ms();
                    run.stats.executed += 1;
                    run.stats.busy_ms += latency_ms;
                    run.stats.energy_mj += report.energy_mj();
                    for layer in &report.layers {
                        run.stats.counters += layer.exec.counters;
                    }
                    run.completed.push((
                        *slot,
                        Completion {
                            worker: self.index,
                            latency_ms,
                            energy_mj: report.energy_mj(),
                            peak_ram_bytes: report.peak_ram_bytes(),
                        },
                    ));
                }
                Err(e) => run.failed.push((*slot, e.to_string())),
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_seeds_are_stable_and_distinct() {
        assert_eq!(model_weight_seed("vww-s5"), model_weight_seed("vww-s5"));
        assert_ne!(model_weight_seed("vww-s5"), model_weight_seed("vww-s6"));
    }

    #[test]
    fn worker_executes_jobs_and_aggregates_device_time() {
        let catalog = ModelCatalog::standard();
        let jobs = vec![
            (
                0,
                RequestSpec {
                    id: 0,
                    model: "vww-s5".into(),
                    seed: 1,
                },
            ),
            (
                1,
                RequestSpec {
                    id: 1,
                    model: "vww-s5".into(),
                    seed: 2,
                },
            ),
            (
                2,
                RequestSpec {
                    id: 2,
                    model: "demo-linear-net".into(),
                    seed: 3,
                },
            ),
        ];
        let worker = Worker::new(
            0,
            Device::stm32_f411re(),
            PlannerKind::Vmcu(IbScheme::RowBuffer),
        );
        let run = worker.run(&catalog, &jobs);
        assert_eq!(run.completed.len(), 3);
        assert!(run.failed.is_empty());
        assert_eq!(run.stats.executed, 3);
        assert!(run.stats.busy_ms > 0.0);
        assert!(run.stats.energy_mj > 0.0);
        assert!(run.stats.counters.macs > 0);
        let total: f64 = run.completed.iter().map(|(_, c)| c.latency_ms).sum();
        assert!((run.stats.busy_ms - total).abs() < 1e-9);
    }

    #[test]
    fn worker_results_are_deterministic() {
        let catalog = ModelCatalog::standard();
        let jobs = vec![(
            0,
            RequestSpec {
                id: 0,
                model: "demo-linear-net".into(),
                seed: 9,
            },
        )];
        let mk =
            || Worker::new(0, Device::stm32_f767zi(), PlannerKind::TinyEngine).run(&catalog, &jobs);
        let (a, b) = (mk(), mk());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.stats, b.stats);
    }
}
