//! Per-device request queues: earliest-deadline-first dispatch and
//! deterministic routing.
//!
//! The online simulator gives every device its own [`EdfQueue`]: arrived
//! requests wait in deadline order, and the device serves the most
//! urgent one next (classic EDF). Shedding is the *scheduler's* job —
//! the queue only orders; the worker pops and drops requests whose
//! deadline already passed before service could start.
//!
//! Routing happens once, up front, in arrival order: the [`Router`]
//! pins each request to a device with a locality-first policy (keep a
//! model's traffic on its home device so hot-swaps stay rare) that
//! spills to the least-loaded device when the home lane runs too far
//! ahead. Both structures are plain deterministic data structures — no
//! clocks, no randomness — so a seeded arrival stream routes and
//! dispatches identically on every host.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued request, ordered by urgency.
///
/// The derived `Ord` compares fields in declaration order: deadline
/// first (EDF), then the globally unique arrival sequence number as the
/// deterministic tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueuedRequest {
    /// Absolute deadline, microseconds of simulated time: arrival time
    /// plus the fleet SLO. Requests not *started* by this instant are
    /// shed.
    pub deadline_us: u64,
    /// Arrival sequence number (unique, assigned in arrival order).
    pub seq: u64,
    /// Arrival timestamp, microseconds of simulated time.
    pub at_us: u64,
    /// Catalog model index.
    pub model: usize,
}

/// An earliest-deadline-first queue of waiting requests.
///
/// # Examples
///
/// ```
/// use vmcu_serve::{EdfQueue, QueuedRequest};
///
/// let mut q = EdfQueue::new();
/// for (seq, deadline_us) in [(0, 900), (1, 300), (2, 600)] {
///     q.push(QueuedRequest { deadline_us, seq, at_us: 0, model: 0 });
/// }
/// // Pops in deadline order, not arrival order.
/// assert_eq!(q.pop().unwrap().deadline_us, 300);
/// assert_eq!(q.pop().unwrap().deadline_us, 600);
/// assert_eq!(q.pop().unwrap().deadline_us, 900);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Default)]
pub struct EdfQueue {
    heap: BinaryHeap<Reverse<QueuedRequest>>,
}

impl EdfQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a request.
    pub fn push(&mut self, request: QueuedRequest) {
        self.heap.push(Reverse(request));
    }

    /// Removes and returns the most urgent request (earliest deadline;
    /// ties broken by arrival order).
    pub fn pop(&mut self) -> Option<QueuedRequest> {
        self.heap.pop().map(|Reverse(r)| r)
    }

    /// The most urgent request without removing it.
    pub fn peek(&self) -> Option<&QueuedRequest> {
        self.heap.peek().map(|Reverse(r)| r)
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Deterministic locality-first request router.
///
/// Each model has a *home* device (`model_index % workers`), so
/// steady-state traffic keeps models resident and hot-swaps rare. To
/// stop a hot model from drowning its home device while others idle,
/// the router spills: when the home lane is more than `slack` requests
/// ahead of the least-loaded lane, the request routes there instead
/// (which may cost that device a swap — locality traded for balance).
///
/// # Examples
///
/// ```
/// use vmcu_serve::Router;
///
/// let mut r = Router::new(2, 1000);
/// // Model 0 lives on device 0, model 1 on device 1.
/// assert_eq!(r.route(0), 0);
/// assert_eq!(r.route(1), 1);
/// assert_eq!(r.route(0), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    assigned: Vec<u64>,
    slack: u64,
}

impl Router {
    /// A router over `workers` devices expecting roughly
    /// `expected_requests` routings (sizes the spill slack).
    ///
    /// # Panics
    ///
    /// Panics when `workers == 0`.
    pub fn new(workers: usize, expected_requests: usize) -> Self {
        assert!(workers > 0, "router needs at least one device");
        Self {
            assigned: vec![0; workers],
            // Tolerate ~12% skew of a fair share before spilling, but
            // never thrash on tiny streams.
            slack: ((expected_requests / workers / 8) as u64).max(64),
        }
    }

    /// Routes one request for `model` to a device index.
    ///
    /// # Panics
    ///
    /// Panics if the router was built with zero workers.
    pub fn route(&mut self, model: usize) -> usize {
        let home = model % self.assigned.len();
        let least = self
            .assigned
            .iter()
            .enumerate()
            .min_by_key(|&(i, &n)| (n, i))
            .map(|(i, _)| i)
            .expect("router has at least one device");
        let chosen = if self.assigned[home] >= self.assigned[least] + self.slack {
            least
        } else {
            home
        };
        self.assigned[chosen] += 1;
        chosen
    }

    /// Requests routed to each device so far.
    pub fn assigned(&self) -> &[u64] {
        &self.assigned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(deadline_us: u64, seq: u64) -> QueuedRequest {
        QueuedRequest {
            deadline_us,
            seq,
            at_us: 0,
            model: 0,
        }
    }

    #[test]
    fn edf_pops_in_deadline_order() {
        let mut q = EdfQueue::new();
        for (i, d) in [500u64, 100, 900, 300, 700].iter().enumerate() {
            q.push(req(*d, i as u64));
        }
        let mut popped = Vec::new();
        while let Some(r) = q.pop() {
            popped.push(r.deadline_us);
        }
        assert_eq!(popped, vec![100, 300, 500, 700, 900]);
    }

    #[test]
    fn deadline_ties_break_by_arrival_order() {
        let mut q = EdfQueue::new();
        q.push(req(100, 7));
        q.push(req(100, 3));
        q.push(req(100, 5));
        assert_eq!(q.pop().unwrap().seq, 3);
        assert_eq!(q.pop().unwrap().seq, 5);
        assert_eq!(q.pop().unwrap().seq, 7);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EdfQueue::new();
        q.push(req(42, 0));
        assert_eq!(q.peek().unwrap().deadline_us, 42);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn router_prefers_the_home_device() {
        let mut r = Router::new(4, 100);
        for model in 0..8 {
            assert_eq!(r.route(model), model % 4);
        }
    }

    #[test]
    fn router_spills_a_hot_model() {
        let mut r = Router::new(2, 100);
        // 1000 requests to one model: without spilling device 0 would
        // take everything.
        for _ in 0..1000 {
            r.route(0);
        }
        let a = r.assigned();
        assert_eq!(a.iter().sum::<u64>(), 1000);
        assert!(
            a[1] > 0,
            "hot-model traffic must spill off the home device: {a:?}"
        );
        // Spilling keeps lanes within one slack band of each other.
        assert!(a[0].abs_diff(a[1]) <= 65, "{a:?}");
    }

    #[test]
    fn router_is_deterministic() {
        let run = || {
            let mut r = Router::new(3, 500);
            (0..500).map(|i| r.route(i % 7)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
