//! The fleet scheduler: deploy once, then admission, dispatch, parallel
//! execution, aggregation.
//!
//! Planning and serving are split the way the paper splits them:
//!
//! 0. **Deployment (once per fleet).** [`Fleet::new`] deploys every
//!    catalog model that fits the device — fit validated, every plan
//!    artifact memoized, weights owned — and prices each model from its
//!    cached [`MemoryPlan`](vmcu_plan::MemoryPlan). Serving a batch
//!    replans nothing; [`FleetStats`] reports planning time and plan
//!    calls separately from inference time.
//! 1. **Admission (sequential, deterministic).** Requests are considered
//!    in submission order; the [`AdmissionController`] prices each model
//!    from the pre-seeded demand cache and pins admitted requests to a
//!    device. Rejections are final for the batch.
//! 2. **Execution (parallel).** One `std::thread` per device drains its
//!    pinned slice through per-model [`Session`](vmcu::Session)s. Which
//!    *host* thread finishes first varies run to run, but every number
//!    reported — latencies, energy, makespan, requests/sec — is
//!    simulated device time, so the report is bit-identical across runs
//!    and machines. Only [`FleetStats::host_wall_ms`] and
//!    [`FleetStats::planning_ms`] are real time.

use crate::admission::AdmissionController;
use crate::arrivals::ArrivalProfile;
use crate::catalog::ModelCatalog;
use crate::queue::Router;
use crate::request::{Outcome, RequestSpec};
use crate::stats::{FleetStats, OnlineStats, OnlineWorkerStats, PlanningStats, WorkerStats};
use crate::worker::{model_weight_seed, run_online, OnlineJob, OnlineModel, Worker};
use std::collections::HashMap;
use std::time::Instant;
use vmcu::prelude::Deployment;
use vmcu::{EngineError, PlannerKind};
use vmcu_sim::Device;

/// Fleet shape: how many copies of which device, planned how.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The device model every worker simulates.
    pub device: Device,
    /// Number of devices (worker threads).
    pub workers: usize,
    /// Planning/execution policy for the whole fleet.
    pub planner: PlannerKind,
}

impl FleetConfig {
    /// A fleet of `workers` copies of `device` under `planner`.
    pub fn new(device: Device, workers: usize, planner: PlannerKind) -> Self {
        Self {
            device,
            workers,
            planner,
        }
    }
}

/// Configuration of one online serving run: the load shape, how much of
/// it, and the latency SLO.
///
/// # Examples
///
/// ```
/// use vmcu_serve::{ArrivalProfile, OnlineConfig};
///
/// let cfg = OnlineConfig::new(
///     ArrivalProfile::Poisson { rate_per_sec: 150.0 },
///     10_000,
///     2024,
/// );
/// assert_eq!(cfg.slo_ms, 250.0); // default SLO
/// ```
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// The seeded arrival process.
    pub profile: ArrivalProfile,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Stream seed — same seed, same run, bit for bit.
    pub seed: u64,
    /// Latency SLO in simulated milliseconds: each request's deadline is
    /// its arrival time plus this. Requests not *started* by their
    /// deadline are shed; requests finished past it count as SLO
    /// violations.
    pub slo_ms: f64,
}

impl OnlineConfig {
    /// A run of `requests` arrivals from `profile` under the default
    /// 250 ms SLO.
    pub fn new(profile: ArrivalProfile, requests: usize, seed: u64) -> Self {
        Self {
            profile,
            requests,
            seed,
            slo_ms: 250.0,
        }
    }

    /// Overrides the latency SLO.
    pub fn with_slo_ms(mut self, slo_ms: f64) -> Self {
        self.slo_ms = slo_ms;
        self
    }
}

/// Everything an online run produced.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Per-worker device statistics.
    pub workers: Vec<OnlineWorkerStats>,
    /// Aggregated fleet statistics.
    pub stats: OnlineStats,
}

/// Everything a batch run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-request outcomes in submission order.
    pub outcomes: Vec<(RequestSpec, Outcome)>,
    /// Per-worker device statistics.
    pub workers: Vec<WorkerStats>,
    /// Aggregated fleet statistics.
    pub stats: FleetStats,
}

impl FleetReport {
    /// Outcomes that completed, in submission order.
    pub fn completions(&self) -> impl Iterator<Item = &RequestSpec> {
        self.outcomes
            .iter()
            .filter(|(_, o)| o.completion().is_some())
            .map(|(r, _)| r)
    }
}

/// A fleet of simulated MCUs serving inference requests: one shared
/// [`Deployment`] per deployable catalog model (plan once), per-model
/// [`Session`](vmcu::Session)s on each worker (run many).
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
    catalog: ModelCatalog,
    /// One deployment per catalog model that fits the device under the
    /// fleet's policy — shared by every worker.
    deployments: HashMap<String, Deployment>,
    /// Per-stage demand prices per catalog model, harvested from the
    /// cached deployment plans (or from the typed deploy rejection), so
    /// admission never replans. Single-element under every single-device
    /// policy; one entry per pipeline stage under the split policy.
    prices: Vec<(String, Vec<usize>)>,
    /// Deploy-phase accounting, reported with every batch.
    planning: PlanningStats,
}

impl Fleet {
    /// Creates a fleet and deploys the catalog: every model is planned
    /// exactly once here, no matter how many batches or requests follow.
    ///
    /// # Panics
    ///
    /// Panics when the configuration has zero workers.
    pub fn new(config: FleetConfig, catalog: ModelCatalog) -> Self {
        assert!(config.workers > 0, "fleet needs at least one worker");
        let started = Instant::now();
        let plan_calls_before = vmcu_plan::telemetry::plan_calls();
        let engine = vmcu::Engine::new(config.device.clone()).planner(config.planner);
        let mut deployments = HashMap::new();
        let mut prices = Vec::with_capacity(catalog.models().len());
        for model in catalog.models() {
            let weights = model.graph.random_weights(model_weight_seed(model.name));
            match engine.deploy(&model.graph, &weights) {
                Ok(dep) => {
                    // Split deployments price as their per-stage demand
                    // vector (admission places each stage on its own
                    // device); everything else prices at its peak.
                    let stages = match dep.split_plan() {
                        Some(split) => split.stage_demands(),
                        None => vec![dep.peak_demand_bytes()],
                    };
                    prices.push((model.name.to_owned(), stages));
                    deployments.insert(model.name.to_owned(), dep);
                }
                // The typed rejection already carries the planned demand
                // (bottleneck bytes incl. runtime overhead) — harvest it
                // so even non-deployable models are priced exactly once.
                Err(EngineError::DoesNotFit { needed, .. }) => {
                    prices.push((
                        model.name.to_owned(),
                        vec![needed.saturating_sub(config.device.runtime_overhead_bytes)],
                    ));
                }
                // Anything else (unstageable weights, flash overflow) is
                // left unpriced; admission prices it on first sight.
                Err(_) => {}
            }
        }
        let planning = PlanningStats {
            deploy_ms: started.elapsed().as_secs_f64() * 1e3,
            deploy_plan_calls: vmcu_plan::telemetry::plan_calls() - plan_calls_before,
            serve_plan_calls: 0,
        };
        Self {
            config,
            catalog,
            deployments,
            prices,
            planning,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The model catalog requests resolve against.
    pub fn catalog(&self) -> &ModelCatalog {
        &self.catalog
    }

    /// The shared deployment of a catalog model, if it fits the device
    /// under the fleet's policy.
    pub fn deployment(&self, model: &str) -> Option<&Deployment> {
        self.deployments.get(model)
    }

    /// Deploy-phase accounting (host planning time, plan calls).
    pub fn planning(&self) -> &PlanningStats {
        &self.planning
    }

    /// Runs one batch of requests through admission and the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics (its panic is
    /// propagated on join).
    pub fn run_batch(&self, requests: &[RequestSpec]) -> FleetReport {
        let started = Instant::now();
        let plan_calls_before = vmcu_plan::telemetry::plan_calls();

        // Phase 1: deterministic admission + dispatch, priced from the
        // cached deployment plans.
        let mut controller = AdmissionController::with_priced_stage_demands(
            self.config.device.clone(),
            self.config.planner,
            self.config.workers,
            self.prices.iter().cloned(),
        );
        // Jobs carry their submission slot: ids are caller-supplied and
        // need not be unique, so slots are the merge key.
        let mut assignments: Vec<Vec<(usize, RequestSpec)>> = vec![Vec::new(); self.config.workers];
        // Outcome slots by position; filled in as results arrive.
        let mut outcomes: Vec<Option<Outcome>> = vec![None; requests.len()];
        let mut rejected = 0usize;
        for (slot, req) in requests.iter().enumerate() {
            let Some(model) = self.catalog.get(&req.model) else {
                outcomes[slot] = Some(Outcome::Rejected(
                    crate::request::RejectReason::UnknownModel,
                ));
                rejected += 1;
                continue;
            };
            match controller.admit(&req.model, &model.graph) {
                Ok(worker) => assignments[worker].push((slot, req.clone())),
                Err(reason) => {
                    outcomes[slot] = Some(Outcome::Rejected(reason));
                    rejected += 1;
                }
            }
        }
        let admission_plan_calls = vmcu_plan::telemetry::plan_calls() - plan_calls_before;

        // Phase 2: one thread per device drains its pinned slice.
        let runs = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .enumerate()
                .map(|(index, jobs)| {
                    let deployments = &self.deployments;
                    scope.spawn(move || Worker::new(index, deployments).run(jobs))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread must not panic"))
                .collect::<Vec<_>>()
        });

        // Phase 3: merge into submission order and aggregate.
        let mut latencies = Vec::new();
        let mut failed = 0usize;
        let mut worker_stats = Vec::with_capacity(runs.len());
        for run in runs {
            for (slot, completion) in run.completed {
                latencies.push(completion.latency_ms);
                outcomes[slot] = Some(Outcome::Completed(completion));
            }
            for (slot, error) in run.failed {
                failed += 1;
                outcomes[slot] = Some(Outcome::Failed(error));
            }
            worker_stats.push(run.stats);
        }
        let planning = PlanningStats {
            serve_plan_calls: admission_plan_calls,
            ..self.planning.clone()
        };
        let stats = FleetStats::aggregate(
            requests.len(),
            rejected,
            failed,
            &latencies,
            &worker_stats,
            &planning,
            started.elapsed().as_secs_f64() * 1e3,
        );
        FleetReport {
            outcomes: requests
                .iter()
                .cloned()
                .zip(outcomes.into_iter().map(|o| o.expect("every slot filled")))
                .collect(),
            workers: worker_stats,
            stats,
        }
    }

    /// Runs a seeded online serving simulation: a continuous arrival
    /// stream through per-device EDF queues with deadline-based shedding
    /// and LRU model hot-swap.
    ///
    /// Three phases, mirroring [`run_batch`](Self::run_batch):
    ///
    /// 1. **Routing (sequential, deterministic).** The seeded stream is
    ///    generated and each request pinned to a device by the
    ///    locality-first [`Router`]. Requests to models that never
    ///    deployed are rejected here.
    /// 2. **Serving (parallel).** One thread per device runs an
    ///    integer-microsecond event loop: pull arrivals, pop the
    ///    earliest deadline, shed if expired, hot-swap the model in if
    ///    not resident (charging [`Deployment::staging_ms`] of simulated
    ///    time), and serve for the model's calibrated service time.
    /// 3. **Aggregation.** Per-worker records merge into [`OnlineStats`]
    ///    — every simulated number bit-reproducible across hosts and
    ///    runs ([`OnlineStats::simulated`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use vmcu_serve::{ArrivalProfile, Fleet, FleetConfig, ModelCatalog, OnlineConfig};
    /// use vmcu::prelude::*;
    ///
    /// let fleet = Fleet::new(
    ///     FleetConfig::new(Device::stm32_f411re(), 2, PlannerKind::Vmcu(IbScheme::RowBuffer)),
    ///     ModelCatalog::standard(),
    /// );
    /// let cfg = OnlineConfig::new(ArrivalProfile::Poisson { rate_per_sec: 60.0 }, 300, 42);
    /// let report = fleet.run_online(&cfg);
    /// assert!(report.stats.completed > 0);
    /// assert_eq!(
    ///     report.stats.offered,
    ///     report.stats.completed + report.stats.shed + report.stats.rejected
    ///         + report.stats.failed,
    /// );
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `cfg.slo_ms` is not a positive finite latency, or if a
    /// worker thread itself panics.
    pub fn run_online(&self, cfg: &OnlineConfig) -> OnlineReport {
        assert!(
            cfg.slo_ms.is_finite() && cfg.slo_ms > 0.0,
            "the SLO must be a positive latency"
        );
        let started = Instant::now();
        let plan_calls_before = vmcu_plan::telemetry::plan_calls();

        // Phase 0: resolve the serving surface per catalog index from
        // the cached deployments — footprints and staging prices, no
        // replanning.
        let models: Vec<Option<OnlineModel>> = self
            .catalog
            .models()
            .iter()
            .map(|m| {
                self.deployments.get(m.name).map(|dep| OnlineModel {
                    name: m.name.to_owned(),
                    ram_bytes: dep.peak_demand_bytes(),
                    flash_bytes: dep.image_bytes(),
                    staging_us: (dep.staging_ms() * 1e3).round() as u64,
                    deployment: dep.clone(),
                })
            })
            .collect();

        // Phase 1: seeded arrivals, routed deterministically.
        let slo_us = (cfg.slo_ms * 1e3).round() as u64;
        let arrivals = cfg.profile.stream(cfg.requests, models.len(), cfg.seed);
        let mut router = Router::new(self.config.workers, cfg.requests);
        let mut lanes: Vec<Vec<OnlineJob>> = vec![Vec::new(); self.config.workers];
        let mut rejected = 0usize;
        for (seq, a) in arrivals.iter().enumerate() {
            if models[a.model].is_none() {
                rejected += 1;
                continue;
            }
            lanes[router.route(a.model)].push(OnlineJob {
                at_us: a.at_us,
                deadline_us: a.at_us + slo_us,
                seq: seq as u64,
                model: a.model,
            });
        }
        let routing_plan_calls = vmcu_plan::telemetry::plan_calls() - plan_calls_before;

        // Phase 2: one thread per device drains its lane.
        let ram_budget = self.config.device.usable_ram_bytes();
        let flash_budget = self.config.device.flash_bytes;
        let runs = std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .iter()
                .map(|jobs| {
                    let models = &models;
                    scope.spawn(move || run_online(models, jobs, ram_budget, flash_budget))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread must not panic"))
                .collect::<Vec<_>>()
        });

        // Phase 3: merge and aggregate.
        let mut completions = Vec::new();
        let mut worker_stats = Vec::with_capacity(runs.len());
        for run in runs {
            completions.extend(run.completions);
            worker_stats.push(run.stats);
        }
        let planning = PlanningStats {
            serve_plan_calls: routing_plan_calls,
            ..self.planning.clone()
        };
        let stats = OnlineStats::aggregate(
            cfg.requests,
            rejected,
            &mut completions,
            &worker_stats,
            &planning,
            started.elapsed().as_secs_f64() * 1e3,
        );
        OnlineReport {
            workers: worker_stats,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::random_stream;
    use vmcu::prelude::IbScheme;

    fn fleet(planner: PlannerKind, workers: usize) -> Fleet {
        Fleet::new(
            FleetConfig::new(Device::stm32_f411re(), workers, planner),
            ModelCatalog::standard(),
        )
    }

    #[test]
    fn scheduler_is_deterministic_for_a_seeded_stream() {
        // The loom-free determinism contract: same seed, same worker
        // count => identical outcomes and stats (host wall-clock and
        // host planning time aside), run to run, regardless of thread
        // interleaving.
        let f = fleet(PlannerKind::Vmcu(IbScheme::RowBuffer), 3);
        let requests = random_stream(f.catalog().models(), 48, 0xF1EE7);
        let a = f.run_batch(&requests);
        let b = f.run_batch(&requests);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.workers, b.workers);
        let (mut sa, mut sb) = (a.stats.clone(), b.stats.clone());
        sa.host_wall_ms = 0.0;
        sb.host_wall_ms = 0.0;
        sa.planning_ms = 0.0;
        sb.planning_ms = 0.0;
        assert_eq!(sa, sb);
        assert!(a.stats.completed > 0);
        assert_eq!(a.stats.failed, 0, "no execution failures expected");
    }

    #[test]
    fn serving_replans_nothing_after_deploy() {
        // The deploy-once acceptance criterion at fleet scale: planning
        // happens in Fleet::new; admitting and serving a whole batch
        // performs zero planning passes (every catalog model deploys
        // under the patched policy, so nothing is priced late).
        let f = fleet(PlannerKind::VmcuPatched(IbScheme::RowBuffer), 2);
        assert!(f.planning().deploy_plan_calls > 0, "deploy must plan");
        let requests = random_stream(f.catalog().models(), 32, 11);
        let report = f.run_batch(&requests);
        assert_eq!(
            report.stats.serve_plan_calls, 0,
            "the serving path must not plan"
        );
        assert_eq!(report.stats.plan_calls_per_request, 0.0);
        assert_eq!(
            report.stats.deploy_plan_calls,
            f.planning().deploy_plan_calls
        );
    }

    #[test]
    fn duplicate_request_ids_are_handled_by_submission_slot() {
        // Ids are caller-supplied and may collide; outcomes must still
        // line up one-to-one with the submitted batch.
        let f = fleet(PlannerKind::Vmcu(IbScheme::RowBuffer), 2);
        let dup = |seed| RequestSpec {
            id: 7,
            model: "vww-s5".into(),
            seed,
        };
        let report = f.run_batch(&[dup(1), dup(2), dup(3)]);
        assert_eq!(report.outcomes.len(), 3);
        assert!(report
            .outcomes
            .iter()
            .all(|(_, o)| o.completion().is_some()));
        assert_eq!(report.stats.completed, 3);
    }

    #[test]
    fn unknown_models_are_rejected_not_panicked() {
        let f = fleet(PlannerKind::Vmcu(IbScheme::RowBuffer), 1);
        let report = f.run_batch(&[RequestSpec {
            id: 0,
            model: "not-a-model".into(),
            seed: 1,
        }]);
        assert!(matches!(
            report.outcomes[0].1,
            Outcome::Rejected(crate::request::RejectReason::UnknownModel)
        ));
        assert_eq!(report.stats.rejected, 1);
        assert_eq!(report.stats.completed, 0);
    }

    #[test]
    fn more_workers_admit_no_less_and_serve_strictly_faster() {
        let requests = random_stream(ModelCatalog::standard().models(), 24, 11);
        let one = fleet(PlannerKind::Vmcu(IbScheme::RowBuffer), 1).run_batch(&requests);
        let four = fleet(PlannerKind::Vmcu(IbScheme::RowBuffer), 4).run_batch(&requests);
        // More devices never hurt: admission can only grow (more SRAM to
        // commit residencies against) and throughput must rise. The
        // makespan itself is not monotone — a single capacity-limited
        // device admits *less* of the offered load, so it can finish its
        // smaller batch sooner.
        assert!(four.stats.admitted >= one.stats.admitted);
        assert!(four.stats.requests_per_sec > one.stats.requests_per_sec);
        // Everything the small fleet served, the big one serves too.
        assert!(four.stats.completed >= one.stats.completed);
    }

    #[test]
    fn empty_batch_reports_cleanly() {
        let f = fleet(PlannerKind::TinyEngine, 2);
        let report = f.run_batch(&[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.admission_rate, 1.0);
        assert_eq!(report.stats.requests_per_sec, 0.0);
    }
}
