//! # vmcu-serve — a fleet scheduler for simulated MCU inference
//!
//! The vMCU paper shows that segment-level memory management shrinks a
//! model's peak SRAM (§7); this crate turns that saving into the number
//! that matters at fleet scale: **how many concurrent requests N devices
//! can admit**. A [`Fleet`] deploys every catalog model **once** at
//! construction (one shared [`vmcu::Deployment`] per model — fit
//! validated, plans memoized, weights owned), owns N simulated
//! Cortex-M4/M7 devices (one `std::thread` worker each, serving through
//! per-model [`vmcu::Session`]s with zero replanning), and prices
//! admission from the cached deployment plans. A batch run reports
//! requests/sec, admission rate, and p50/p99 latency — all in simulated
//! device time, so every number is bit-reproducible across hosts (the CI
//! bench gate depends on this) — with planning time and plan calls
//! accounted separately from inference time.
//!
//! ## Quickstart
//!
//! ```
//! use vmcu_serve::{Fleet, FleetConfig, ModelCatalog, random_stream};
//! use vmcu::prelude::*;
//!
//! let fleet = Fleet::new(
//!     FleetConfig::new(Device::stm32_f411re(), 2, PlannerKind::Vmcu(IbScheme::RowBuffer)),
//!     ModelCatalog::standard(),
//! );
//! let requests = random_stream(fleet.catalog().models(), 16, 42);
//! let report = fleet.run_batch(&requests);
//! assert!(report.stats.completed > 0);
//! assert!(report.stats.requests_per_sec > 0.0);
//! ```
//!
//! Swap `PlannerKind::Vmcu(..)` for [`vmcu::PlannerKind::TinyEngine`] and the
//! same stream completes fewer requests: models the vMCU planner fits at
//! 128 KB get rejected by tensor-level planning — the paper's Figure 7
//! deployability gap, measured as fleet throughput.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod catalog;
pub mod fleet;
pub mod request;
pub mod stats;
mod worker;

pub use admission::AdmissionController;
pub use catalog::ModelCatalog;
pub use fleet::{Fleet, FleetConfig, FleetReport};
pub use request::{random_stream, Completion, Outcome, RejectReason, RequestSpec};
pub use stats::{percentile_ms, FleetStats, PlanningStats, WorkerStats};
