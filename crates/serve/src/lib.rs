//! # vmcu-serve — a fleet scheduler for simulated MCU inference
//!
//! The vMCU paper shows that segment-level memory management shrinks a
//! model's peak SRAM (§7); this crate turns that saving into the number
//! that matters at fleet scale: **how many concurrent requests N devices
//! can admit**. A [`Fleet`] deploys every catalog model **once** at
//! construction (one shared [`vmcu::Deployment`] per model — fit
//! validated, plans memoized, weights owned), owns N simulated
//! Cortex-M4/M7 devices (one `std::thread` worker each, serving through
//! per-model [`vmcu::Session`]s with zero replanning), and prices
//! admission from the cached deployment plans. A batch run reports
//! requests/sec, admission rate, and p50/p99 latency — all in simulated
//! device time, so every number is bit-reproducible across hosts (the CI
//! bench gate depends on this) — with planning time and plan calls
//! accounted separately from inference time.
//!
//! ## Quickstart: online serving
//!
//! The primary serving path is the **online simulator**
//! ([`Fleet::run_online`]): a seeded [`ArrivalProfile`] generates a
//! continuous request stream, each device runs an earliest-deadline-
//! first queue with deadline-based shedding, and models hot-swap on and
//! off devices with every staging charged simulated Flash-programming
//! time ([`vmcu::Deployment::staging_ms`]). See `docs/SERVING.md` for
//! the operations handbook.
//!
//! ```
//! use vmcu_serve::{ArrivalProfile, Fleet, FleetConfig, ModelCatalog, OnlineConfig};
//! use vmcu::prelude::*;
//!
//! let fleet = Fleet::new(
//!     FleetConfig::new(Device::stm32_f411re(), 2, PlannerKind::Vmcu(IbScheme::RowBuffer)),
//!     ModelCatalog::standard(),
//! );
//! let cfg = OnlineConfig::new(ArrivalProfile::Poisson { rate_per_sec: 60.0 }, 400, 2024);
//! let report = fleet.run_online(&cfg);
//! assert!(report.stats.completed > 0);
//! assert!(report.stats.p99_sojourn_ms >= report.stats.p50_sojourn_ms);
//! // Same seed => bit-identical simulated stats, on any host.
//! assert_eq!(
//!     report.stats.simulated(),
//!     fleet.run_online(&cfg).stats.simulated(),
//! );
//! ```
//!
//! The legacy **batch path** ([`Fleet::run_batch`]) admits one seeded
//! batch up front and drains it — still the cleanest way to measure the
//! paper's admission-capacity claim:
//!
//! ```
//! use vmcu_serve::{Fleet, FleetConfig, ModelCatalog, random_stream};
//! use vmcu::prelude::*;
//!
//! let fleet = Fleet::new(
//!     FleetConfig::new(Device::stm32_f411re(), 2, PlannerKind::Vmcu(IbScheme::RowBuffer)),
//!     ModelCatalog::standard(),
//! );
//! let requests = random_stream(fleet.catalog().models(), 16, 42);
//! let report = fleet.run_batch(&requests);
//! assert!(report.stats.completed > 0);
//! assert!(report.stats.requests_per_sec > 0.0);
//! ```
//!
//! Swap `PlannerKind::Vmcu(..)` for [`vmcu::PlannerKind::TinyEngine`] and the
//! same stream completes fewer requests: models the vMCU planner fits at
//! 128 KB get rejected by tensor-level planning — the paper's Figure 7
//! deployability gap, measured as fleet throughput.

pub mod admission;
pub mod arrivals;
pub mod catalog;
pub mod fleet;
pub mod queue;
pub mod request;
pub mod stats;
pub mod swap;
mod worker;

pub use admission::AdmissionController;
pub use arrivals::{Arrival, ArrivalProfile};
pub use catalog::ModelCatalog;
pub use fleet::{Fleet, FleetConfig, FleetReport, OnlineConfig, OnlineReport};
pub use queue::{EdfQueue, QueuedRequest, Router};
pub use request::{random_stream, Completion, Outcome, RejectReason, RequestSpec};
pub use stats::{
    percentile_ms, percentile_us, FleetStats, OnlineStats, OnlineWorkerStats, PlanningStats,
    WorkerStats,
};
pub use swap::{Admit, ResidencyLedger};
