//! Seeded arrival processes for the online serving simulator.
//!
//! An [`ArrivalProfile`] turns a seed into a deterministic stream of
//! [`Arrival`]s — request timestamps in **microseconds of simulated
//! time** plus a catalog model index and an input seed. Three profiles
//! cover the load shapes a fleet operator cares about:
//!
//! * [`ArrivalProfile::Poisson`] — memoryless steady-state traffic at a
//!   constant rate;
//! * [`ArrivalProfile::Bursty`] — alternating burst/gap windows (a
//!   sensor-network duty cycle, or a thundering herd every few seconds);
//! * [`ArrivalProfile::Diurnal`] — a day/night swing, rate ramping
//!   linearly between a trough and a peak over a fixed period.
//!
//! Non-homogeneous profiles are sampled by **Lewis thinning**: candidate
//! arrivals are drawn from a homogeneous process at the profile's peak
//! rate and accepted with probability `rate(t) / peak_rate`. Everything
//! — including the exponential inter-arrival draws — is computed with
//! IEEE-deterministic arithmetic only (no `libm` calls — the natural
//! log is a private bit-decomposition implementation, `det_ln`),
//! so a seeded stream is **bit-identical across hosts**, which is what
//! lets CI gate on the simulated metrics downstream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request arrival in a seeded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arrival {
    /// Arrival timestamp, microseconds of simulated time.
    pub at_us: u64,
    /// Catalog model index this request addresses.
    pub model: usize,
    /// Seed for the request's input tensor.
    pub seed: u64,
}

/// A seeded arrival process: how simulated load reaches the fleet.
///
/// All rates are requests per simulated second; all windows are
/// simulated milliseconds. The same profile + seed produces a
/// bit-identical stream on every host.
///
/// # Examples
///
/// ```
/// use vmcu_serve::ArrivalProfile;
///
/// let profile = ArrivalProfile::Poisson { rate_per_sec: 200.0 };
/// let a = profile.stream(100, 4, 42);
/// let b = profile.stream(100, 4, 42);
/// assert_eq!(a, b); // seeded => bit-identical
/// assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us));
/// assert!(a.iter().all(|arr| arr.model < 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProfile {
    /// Homogeneous Poisson traffic: exponential inter-arrival times at a
    /// constant rate.
    Poisson {
        /// Mean arrival rate, requests per simulated second.
        rate_per_sec: f64,
    },
    /// Alternating burst/gap windows: `burst_rate_per_sec` for
    /// `burst_ms`, then `base_rate_per_sec` for `gap_ms`, repeating.
    Bursty {
        /// Rate outside bursts, requests per simulated second.
        base_rate_per_sec: f64,
        /// Rate inside bursts, requests per simulated second.
        burst_rate_per_sec: f64,
        /// Burst window length, simulated milliseconds.
        burst_ms: f64,
        /// Gap between bursts, simulated milliseconds.
        gap_ms: f64,
    },
    /// A day/night swing: the rate ramps linearly from `trough` up to
    /// `peak` and back over each `period_ms` (a triangle wave — chosen
    /// over a sinusoid because it needs no `libm` trigonometry, keeping
    /// the stream bit-reproducible across hosts).
    Diurnal {
        /// Minimum rate (the "night"), requests per simulated second.
        trough_rate_per_sec: f64,
        /// Maximum rate (the "peak hour"), requests per simulated second.
        peak_rate_per_sec: f64,
        /// Length of one full day/night cycle, simulated milliseconds.
        period_ms: f64,
    },
}

impl ArrivalProfile {
    /// Short stable name, used as the profile key in bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Poisson { .. } => "poisson",
            Self::Bursty { .. } => "bursty",
            Self::Diurnal { .. } => "diurnal",
        }
    }

    /// The maximum instantaneous rate (thinning envelope).
    fn peak_rate(&self) -> f64 {
        match *self {
            Self::Poisson { rate_per_sec } => rate_per_sec,
            Self::Bursty {
                base_rate_per_sec,
                burst_rate_per_sec,
                ..
            } => base_rate_per_sec.max(burst_rate_per_sec),
            Self::Diurnal {
                trough_rate_per_sec,
                peak_rate_per_sec,
                ..
            } => trough_rate_per_sec.max(peak_rate_per_sec),
        }
    }

    /// The instantaneous rate at simulated time `t_us` (requests/sec).
    fn rate_at(&self, t_us: u64) -> f64 {
        match *self {
            Self::Poisson { rate_per_sec } => rate_per_sec,
            Self::Bursty {
                base_rate_per_sec,
                burst_rate_per_sec,
                burst_ms,
                gap_ms,
            } => {
                let burst_us = ms_to_us(burst_ms);
                let cycle_us = burst_us + ms_to_us(gap_ms);
                if t_us % cycle_us < burst_us {
                    burst_rate_per_sec
                } else {
                    base_rate_per_sec
                }
            }
            Self::Diurnal {
                trough_rate_per_sec,
                peak_rate_per_sec,
                period_ms,
            } => {
                let period_us = ms_to_us(period_ms);
                let frac = (t_us % period_us) as f64 / period_us as f64;
                // Triangle wave: 0 at the trough, 1 at mid-period.
                let tri = if frac < 0.5 {
                    2.0 * frac
                } else {
                    2.0 * (1.0 - frac)
                };
                trough_rate_per_sec + (peak_rate_per_sec - trough_rate_per_sec) * tri
            }
        }
    }

    fn validate(&self) {
        let peak = self.peak_rate();
        assert!(
            peak.is_finite() && peak > 0.0,
            "arrival rates must be positive and finite"
        );
        match *self {
            Self::Poisson { .. } => {}
            Self::Bursty {
                base_rate_per_sec,
                burst_ms,
                gap_ms,
                ..
            } => {
                assert!(base_rate_per_sec > 0.0, "base rate must be positive");
                assert!(burst_ms > 0.0 && gap_ms > 0.0, "windows must be positive");
            }
            Self::Diurnal {
                trough_rate_per_sec,
                peak_rate_per_sec,
                period_ms,
            } => {
                assert!(trough_rate_per_sec > 0.0, "trough rate must be positive");
                assert!(
                    peak_rate_per_sec >= trough_rate_per_sec,
                    "peak rate must be at least the trough rate"
                );
                assert!(period_ms > 0.0, "period must be positive");
            }
        }
    }

    /// Generates a seeded stream of `requests` arrivals over `models`
    /// catalog entries (model indices drawn uniformly).
    ///
    /// Timestamps are non-decreasing `u64` microseconds; the stream is a
    /// pure function of `(self, requests, models, seed)`.
    ///
    /// # Panics
    ///
    /// Panics when `models == 0` or a profile parameter is non-positive.
    pub fn stream(&self, requests: usize, models: usize, seed: u64) -> Vec<Arrival> {
        assert!(models > 0, "cannot draw requests over an empty catalog");
        self.validate();
        let peak = self.peak_rate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(requests);
        let mut t_us: u64 = 0;
        while out.len() < requests {
            // Candidate from the homogeneous envelope process at the
            // peak rate; at least 1µs so the clock always advances.
            let dt_sec = -det_ln(unit_open(&mut rng)) / peak;
            t_us += ((dt_sec * 1e6).round() as u64).max(1);
            // Lewis thinning: keep the candidate with probability
            // rate(t)/peak. Homogeneous profiles skip the accept draw so
            // the Poisson stream costs one draw per arrival.
            let rate = self.rate_at(t_us);
            if rate < peak && unit_open(&mut rng) >= rate / peak {
                continue;
            }
            out.push(Arrival {
                at_us: t_us,
                model: rng.gen_range(0..models),
                seed: rng.next_u64(),
            });
        }
        out
    }
}

fn ms_to_us(ms: f64) -> u64 {
    ((ms * 1e3).round() as u64).max(1)
}

/// A uniform draw in the open interval (0, 1) — never 0, so its log is
/// finite.
fn unit_open(rng: &mut StdRng) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Deterministic natural logarithm over `(0, 1]`-ish inputs (any
/// positive normal `f64`).
///
/// `f64::ln` routes through the platform's `libm`, whose last-bit
/// rounding differs across hosts — poison for a bit-reproducible
/// simulation. This implementation uses only IEEE-754-deterministic
/// operations (`+ - * /` and bit manipulation): decompose
/// `x = m·2^e` with `m ∈ [√½, √2)`, then evaluate the atanh series
/// `ln(m) = 2s(1 + s²/3 + s⁴/5 + …)` with `s = (m−1)/(m+1)`, `|s| ≤
/// 0.172`, truncated at `s¹³` (relative error below 1e-12).
fn det_ln(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0 && x.is_normal());
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7FF) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let series = 1.0
        + s2 * (1.0 / 3.0
            + s2 * (1.0 / 5.0
                + s2 * (1.0 / 7.0 + s2 * (1.0 / 9.0 + s2 * (1.0 / 11.0 + s2 / 13.0)))));
    2.0 * s * series + e as f64 * std::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson(rate: f64) -> ArrivalProfile {
        ArrivalProfile::Poisson { rate_per_sec: rate }
    }

    fn bursty() -> ArrivalProfile {
        ArrivalProfile::Bursty {
            base_rate_per_sec: 20.0,
            burst_rate_per_sec: 2000.0,
            burst_ms: 50.0,
            gap_ms: 450.0,
        }
    }

    fn diurnal() -> ArrivalProfile {
        ArrivalProfile::Diurnal {
            trough_rate_per_sec: 20.0,
            peak_rate_per_sec: 2000.0,
            period_ms: 10_000.0,
        }
    }

    #[test]
    fn det_ln_matches_std_ln_closely() {
        // std's ln is platform libm (accurate to ~1 ulp); ours must agree
        // to ~1e-12 relative — it is the *deterministic definition* used
        // by the sampler, accuracy just needs to be sane.
        for &x in &[1e-16, 1e-9, 0.001, 0.3, 0.5, 0.999, 1.0, 1.5, 2.0, 1e6] {
            let got = det_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "ln({x}): got {got}, want {want}"
            );
        }
        assert_eq!(det_ln(1.0), 0.0);
    }

    #[test]
    fn streams_are_seed_deterministic_and_monotone() {
        for profile in [poisson(500.0), bursty(), diurnal()] {
            let a = profile.stream(2_000, 9, 0xA11CE);
            let b = profile.stream(2_000, 9, 0xA11CE);
            assert_eq!(a, b, "{} must be seed-deterministic", profile.name());
            assert!(
                a.windows(2).all(|w| w[0].at_us <= w[1].at_us),
                "{} timestamps must be non-decreasing",
                profile.name()
            );
            assert!(a.iter().all(|arr| arr.model < 9));
            let c = profile.stream(2_000, 9, 0xA11CF);
            assert_ne!(a, c, "a different seed must move the stream");
        }
    }

    #[test]
    fn poisson_hits_its_mean_rate() {
        let rate = 1000.0;
        let n = 50_000;
        let stream = poisson(rate).stream(n, 3, 7);
        let span_sec = stream.last().unwrap().at_us as f64 / 1e6;
        let observed = n as f64 / span_sec;
        assert!(
            (observed - rate).abs() / rate < 0.05,
            "observed {observed} req/s vs nominal {rate}"
        );
    }

    #[test]
    fn bursts_concentrate_arrivals() {
        let stream = bursty().stream(20_000, 3, 11);
        let burst_us = 50_000u64;
        let cycle_us = 500_000u64;
        let in_burst = stream
            .iter()
            .filter(|a| a.at_us % cycle_us < burst_us)
            .count();
        // Bursts cover 10% of the timeline but a 100x rate: nearly all
        // arrivals land inside them.
        assert!(
            in_burst as f64 > 0.8 * stream.len() as f64,
            "only {in_burst}/{} arrivals in bursts",
            stream.len()
        );
    }

    #[test]
    fn diurnal_peak_outdraws_the_trough() {
        let stream = diurnal().stream(20_000, 3, 13);
        let period_us = 10_000_000u64;
        let phase = |a: &Arrival| (a.at_us % period_us) as f64 / period_us as f64;
        let near_peak = stream
            .iter()
            .filter(|a| (0.4..0.6).contains(&phase(a)))
            .count();
        let near_trough = stream
            .iter()
            .filter(|a| {
                let p = phase(a);
                !(0.1..0.9).contains(&p)
            })
            .count();
        assert!(
            near_peak > 5 * near_trough.max(1),
            "peak window {near_peak} vs trough window {near_trough}"
        );
    }

    #[test]
    fn input_seeds_are_not_degenerate() {
        let stream = poisson(100.0).stream(64, 4, 3);
        let mut seeds: Vec<u64> = stream.iter().map(|a| a.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "input seeds must be distinct");
    }

    #[test]
    #[should_panic(expected = "empty catalog")]
    fn zero_models_panics() {
        let _ = poisson(10.0).stream(1, 0, 0);
    }
}
