//! Typed hazard findings and the per-deployment audit report.
//!
//! Every check in this crate reports through [`Violation`]: a machine-
//! readable record naming the offending site (layer, fused group, tile,
//! or schedule step) and the byte range or tensor involved. A clean
//! [`AuditReport`] is the static proof object the paper's safety
//! argument calls for — no hazard exists *by construction of the plan*,
//! not merely on the inputs a differential test happened to run.

use std::fmt;

/// One statically proven hazard in a memory plan.
///
/// Byte-granular checks (pool replay) fill `byte`/`len` with pool-logical
/// addresses; tensor-granular checks (schedule audit) reuse the same
/// fields with the tensor id in `byte` and the tensor size in `len` —
/// the `site` string always says which view applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A producer store landed on a byte still holding live data.
    Clobber {
        /// Offending layer / group / tile.
        site: String,
        /// First clobbered byte (pool-logical address).
        byte: i64,
        /// Length of the offending store.
        len: usize,
    },
    /// A demand or access exceeded its arena / RAM budget.
    OutOfBounds {
        /// Offending layer / group / tile.
        site: String,
        /// Bytes the plan actually needs at this site.
        needed: usize,
        /// Bytes the budget allows.
        budget: usize,
    },
    /// Bytes or tensors never freed (or an output range never produced).
    Leak {
        /// Offending layer / group / tile.
        site: String,
        /// First leaked byte, or tensor id for schedule-level leaks.
        byte: i64,
        /// Extent of the leak in bytes.
        len: usize,
        /// What exactly leaked (e.g. `input byte never freed`).
        detail: String,
    },
    /// A byte range or tensor was freed twice.
    DoubleFree {
        /// Offending layer / group / tile.
        site: String,
        /// First doubly freed byte, or tensor id.
        byte: i64,
        /// Extent of the double free in bytes.
        len: usize,
    },
    /// A planned execution distance is below the re-derived minimum, so
    /// some store would overwrite a not-yet-consumed input byte.
    DistanceTooSmall {
        /// Offending layer / group.
        site: String,
        /// Distance the plan carries.
        planned: i64,
        /// Minimum distance re-derived from the trace.
        derived: i64,
    },
    /// A tensor was consumed (or freed) while not live — freed too
    /// early, or never produced at all.
    UseAfterFree {
        /// Offending schedule step.
        site: String,
        /// Tensor id (0 = graph input, `1 + j` = node `j`'s output).
        tensor: usize,
        /// What exactly went wrong.
        detail: String,
    },
}

impl Violation {
    /// The offending site label.
    pub fn site(&self) -> &str {
        match self {
            Violation::Clobber { site, .. }
            | Violation::OutOfBounds { site, .. }
            | Violation::Leak { site, .. }
            | Violation::DoubleFree { site, .. }
            | Violation::DistanceTooSmall { site, .. }
            | Violation::UseAfterFree { site, .. } => site,
        }
    }

    /// Stable kind tag (the taxonomy of docs/VERIFY.md).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Clobber { .. } => "Clobber",
            Violation::OutOfBounds { .. } => "OutOfBounds",
            Violation::Leak { .. } => "Leak",
            Violation::DoubleFree { .. } => "DoubleFree",
            Violation::DistanceTooSmall { .. } => "DistanceTooSmall",
            Violation::UseAfterFree { .. } => "UseAfterFree",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Clobber { site, byte, len } => {
                write!(
                    f,
                    "Clobber at {site}: store over live bytes [{byte}, {})",
                    byte + *len as i64
                )
            }
            Violation::OutOfBounds {
                site,
                needed,
                budget,
            } => {
                write!(
                    f,
                    "OutOfBounds at {site}: needs {needed} B, budget {budget} B"
                )
            }
            Violation::Leak {
                site,
                byte,
                len,
                detail,
            } => {
                write!(
                    f,
                    "Leak at {site}: [{byte}, {}) — {detail}",
                    byte + *len as i64
                )
            }
            Violation::DoubleFree { site, byte, len } => {
                write!(
                    f,
                    "DoubleFree at {site}: bytes [{byte}, {})",
                    byte + *len as i64
                )
            }
            Violation::DistanceTooSmall {
                site,
                planned,
                derived,
            } => {
                write!(
                    f,
                    "DistanceTooSmall at {site}: planned {planned}, derived minimum {derived}"
                )
            }
            Violation::UseAfterFree {
                site,
                tensor,
                detail,
            } => {
                write!(f, "UseAfterFree at {site}: tensor {tensor} — {detail}")
            }
        }
    }
}

/// Outcome of statically auditing one resolved deployment.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Planner policy name (e.g. `vMCU-fused`).
    pub planner: String,
    /// Short model description (node count and topology).
    pub model: String,
    /// Target device name.
    pub device: String,
    /// Every hazard found; empty means the plan is certified.
    pub violations: Vec<Violation>,
    /// Graph nodes whose placement was replayed or bounded.
    pub nodes_checked: usize,
    /// Execution distances independently re-derived and cross-checked
    /// against `vmcu-solver`.
    pub distances_checked: usize,
}

impl AuditReport {
    /// Whether the deployment is certified hazard-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} on {}: {} node(s), {} distance(s), ",
            self.planner, self.model, self.device, self.nodes_checked, self.distances_checked
        )?;
        if self.is_clean() {
            write!(f, "certified hazard-free")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_site_and_range() {
        let v = Violation::Clobber {
            site: "node 3 (pointwise)".into(),
            byte: 16,
            len: 4,
        };
        let s = v.to_string();
        assert!(s.contains("node 3"), "{s}");
        assert!(s.contains("[16, 20)"), "{s}");
        assert_eq!(v.kind(), "Clobber");
        assert_eq!(v.site(), "node 3 (pointwise)");
    }

    #[test]
    fn clean_report_displays_certification() {
        let r = AuditReport {
            planner: "vMCU".into(),
            ..Default::default()
        };
        assert!(r.is_clean());
        assert!(r.to_string().contains("certified"));
    }
}
