//! `vmcu-verify`: a static plan auditor proving hazard-freedom of every
//! memory plan (vMCU, MLSys 2024).
//!
//! The repo's differential tests check the execution-distance invariant
//! *dynamically* — run the kernels, compare bits. This crate turns the
//! paper's Theorem-style safety argument into machine-checked fact: it
//! takes a resolved [`vmcu::Deployment`] (any planner kind, any zoo
//! model, any ladder device) and, **without executing a kernel**,
//! symbolically replays the schedule as byte-interval read/write events
//! derived from layer shapes plus plan offsets, proving
//!
//! 1. no producer store clobbers a not-yet-consumed input byte,
//! 2. every access stays in bounds of its arena / RAM budget,
//! 3. every tensor is freed exactly once at its last consumer, and
//! 4. every overlapped segment's execution distance, re-derived two
//!    independent ways (interval replay and `vmcu-solver`'s read/write
//!    event bound), matches what the plan carries.
//!
//! Findings are typed [`Violation`]s with the offending layer and byte
//! range; a clean [`AuditReport`] is the certification. Mutation tests
//! (corrupted base, shrunk distance, dropped free) keep the checker
//! honest — see `tests/verify_props.rs` and docs/VERIFY.md.
//!
//! # Example
//!
//! ```
//! use vmcu::prelude::*;
//!
//! let graph = vmcu_graph::zoo::demo_linear_net();
//! let weights = graph.random_weights(7);
//! let dep = Engine::new(Device::stm32_f411re())
//!     .planner(PlannerKind::Vmcu(IbScheme::RowBuffer))
//!     .deploy(&graph, &weights)
//!     .expect("deploys");
//! let report = vmcu_verify::audit(&dep);
//! assert!(report.is_clean(), "{report}");
//! assert!(report.distances_checked > 0);
//! ```

pub mod audit;
pub mod replay;
pub mod schedule;
pub mod violation;

pub use audit::{
    audit, audit_chain_plan, audit_fused_group, audit_fusion_plan, audit_node, audit_patch_plan,
    audit_split_plan, layer_events,
};
pub use replay::{
    check_distance, derive_min_distance, replay_layer, solver_min_distance, LayerSpec, PoolModel,
};
pub use schedule::{audit_schedule, canonical_frees, ScheduleAudit};
pub use violation::{AuditReport, Violation};
