//! Tensor-granular schedule audit: last-consumer liveness, re-derived.
//!
//! Where [`crate::replay`] proves byte-level safety *inside* one layer's
//! pool window, this module proves the *between*-layer property: every
//! activation tensor is produced before any consumer runs, freed exactly
//! once at its last consumer, and the per-step resident-set demand never
//! exceeds the device budget. The accounting deliberately re-implements
//! `vmcu_plan::order::price_order` from the graph alone so plan rows can
//! be cross-checked against an independent derivation.

use crate::violation::Violation;
use vmcu_graph::{Graph, NodeInput};
use vmcu_sim::Device;

/// Tensor ids: 0 is the graph input, `1 + j` is node `j`'s output.
fn tensor_id(edge: &NodeInput) -> usize {
    match edge {
        NodeInput::GraphInput => 0,
        NodeInput::Node(j) => 1 + *j,
    }
}

/// Byte size per tensor id.
fn tensor_bytes(graph: &Graph) -> Vec<usize> {
    let mut tb = Vec::with_capacity(graph.len() + 1);
    tb.push(graph.in_shape().iter().product());
    tb.extend(graph.layers().iter().map(vmcu_graph::LayerDesc::out_bytes));
    tb
}

/// Execution-step index of each tensor's last consumer under `order`
/// (`None` when nothing consumes it).
fn last_consumer_step(graph: &Graph, order: &[usize]) -> Vec<Option<usize>> {
    let mut last = vec![None; graph.len() + 1];
    for (step, &v) in order.iter().enumerate() {
        if v < graph.len() {
            for edge in graph.node_inputs(v) {
                last[tensor_id(edge)] = Some(step);
            }
        }
    }
    last
}

/// The free schedule `infer_in_order` implicitly executes: every tensor
/// is released at its last consumer's step; tensors nothing consumes are
/// released at their production step (the graph input at step 0). The
/// network output is the host's to read and is never freed.
pub fn canonical_frees(graph: &Graph, order: &[usize]) -> Vec<Vec<usize>> {
    let n = graph.len();
    let mut frees = vec![Vec::new(); n.max(1)];
    if n == 0 {
        return frees;
    }
    let last = last_consumer_step(graph, order);
    let output_tensor = 1 + order.last().map_or(n - 1, |&v| v);
    for (t, l) in last.iter().enumerate() {
        if t == output_tensor {
            continue;
        }
        let step = match l {
            Some(step) => *step,
            // Unconsumed: the graph input dies immediately; a node's
            // dead-end output dies at its own production step.
            None if t == 0 => 0,
            None => order.iter().position(|&v| 1 + v == t).unwrap_or(n - 1),
        };
        frees[step].push(t);
    }
    frees
}

/// Result of a schedule audit.
#[derive(Debug, Clone, Default)]
pub struct ScheduleAudit {
    /// Every hazard found.
    pub violations: Vec<Violation>,
    /// Independently derived per-step pool-side demand (activation
    /// window + held live tensors + workspace; no runtime overhead).
    pub step_demand_bytes: Vec<usize>,
}

/// Audits one execution order plus an explicit free schedule against
/// `graph`, with per-node `(activation, workspace)` windows from the
/// policy's planner and the `device` budget.
///
/// `frees[k]` lists tensor ids released after step `k` (see
/// [`canonical_frees`]); auditing a mutated schedule (dropped, early, or
/// duplicated frees) is exactly how the checker's non-vacuity is tested.
pub fn audit_schedule(
    graph: &Graph,
    order: &[usize],
    frees: &[Vec<usize>],
    node_costs: &[(usize, usize)],
    device: &Device,
) -> ScheduleAudit {
    let n = graph.len();
    let mut audit = ScheduleAudit::default();
    let v = &mut audit.violations;
    if order.len() != n {
        v.push(Violation::Leak {
            site: "execution order".into(),
            byte: order.len() as i64,
            len: n,
            detail: format!("order covers {} of {n} nodes", order.len()),
        });
        return audit;
    }
    let mut seen = vec![false; n];
    for &node in order {
        if node >= n {
            v.push(Violation::OutOfBounds {
                site: "execution order".into(),
                needed: node,
                budget: n,
            });
            return audit;
        }
        if seen[node] {
            v.push(Violation::DoubleFree {
                site: format!("execution order: node {node} scheduled twice"),
                byte: node as i64,
                len: 0,
            });
            return audit;
        }
        seen[node] = true;
    }

    let tb = tensor_bytes(graph);
    let last = last_consumer_step(graph, order);
    let output_tensor = 1 + order.last().copied().unwrap_or(0);

    // Tensor lifecycle state machine driven by the *given* free schedule.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        NotProduced,
        Live,
        Freed,
    }
    let mut state = vec![State::NotProduced; n + 1];
    state[0] = State::Live;

    // Independent price_order-style accounting (consumer counts drive
    // `held`/`dying`, not the free schedule, so a corrupted schedule
    // cannot skew the demand cross-check).
    let mut remaining: Vec<usize> = vec![0; n + 1];
    for ins in graph.inputs() {
        for edge in ins {
            remaining[tensor_id(edge)] += 1;
        }
    }
    let mut held = vec![false; n + 1];
    held[0] = remaining[0] > 0;
    let mut held_bytes: usize = if held[0] { tb[0] } else { 0 };

    for (step, &node) in order.iter().enumerate() {
        let site = format!("step {step}: node {node} ({})", graph.layers()[node].kind());
        // Distinct input tensors and their use counts at this node.
        let mut uses: Vec<(usize, usize)> = Vec::new();
        for edge in graph.node_inputs(node) {
            let t = tensor_id(edge);
            match state[t] {
                State::Live => {}
                State::NotProduced => v.push(Violation::UseAfterFree {
                    site: site.clone(),
                    tensor: t,
                    detail: "consumed before production".into(),
                }),
                State::Freed => v.push(Violation::UseAfterFree {
                    site: site.clone(),
                    tensor: t,
                    detail: "consumed after free".into(),
                }),
            }
            match uses.iter_mut().find(|(id, _)| *id == t) {
                Some((_, k)) => *k += 1,
                None => uses.push((t, 1)),
            }
        }
        // Inputs dying at this step are consumed inside the window;
        // everything else live is held beside it at full size.
        let dying: usize = uses
            .iter()
            .filter(|(t, k)| remaining[*t] == *k)
            .map(|(t, _)| tb[*t])
            .sum();
        let (act, ws) = node_costs.get(node).copied().unwrap_or((0, 0));
        let demand = act + held_bytes.saturating_sub(dying) + ws;
        audit.step_demand_bytes.push(demand);
        if demand + device.runtime_overhead_bytes > device.ram_bytes {
            v.push(Violation::OutOfBounds {
                site: site.clone(),
                needed: demand + device.runtime_overhead_bytes,
                budget: device.ram_bytes,
            });
        }
        for (t, k) in uses {
            remaining[t] -= k.min(remaining[t]);
            if remaining[t] == 0 && held[t] {
                held[t] = false;
                held_bytes -= tb[t];
            }
        }
        let out_t = 1 + node;
        if state[out_t] == State::NotProduced {
            state[out_t] = State::Live;
        }
        if remaining[out_t] > 0 && !held[out_t] {
            held[out_t] = true;
            held_bytes += tb[out_t];
        }
        // Apply the declared frees for this step.
        for &t in frees.get(step).map_or(&[][..], Vec::as_slice) {
            let fsite = format!("{site}: free of tensor {t}");
            match state.get(t).copied() {
                None => v.push(Violation::OutOfBounds {
                    site: fsite,
                    needed: t,
                    budget: n + 1,
                }),
                Some(State::Freed) => {
                    v.push(Violation::DoubleFree {
                        site: fsite,
                        byte: t as i64,
                        len: *tb.get(t).unwrap_or(&0),
                    });
                }
                Some(State::NotProduced) => v.push(Violation::UseAfterFree {
                    site: fsite,
                    tensor: t,
                    detail: "freed before production".into(),
                }),
                Some(State::Live) => {
                    if last[t].is_some_and(|l| l > step) {
                        v.push(Violation::UseAfterFree {
                            site: fsite.clone(),
                            tensor: t,
                            detail: format!(
                                "freed before its last consumer (step {})",
                                last[t].unwrap_or(step)
                            ),
                        });
                    }
                    if t == output_tensor {
                        v.push(Violation::Leak {
                            site: fsite,
                            byte: t as i64,
                            len: tb[t],
                            detail: "network output freed before the host read it".into(),
                        });
                    }
                    state[t] = State::Freed;
                }
            }
        }
    }

    // End of schedule: the output must be live, nothing else may be.
    for (t, s) in state.iter().enumerate() {
        if t == output_tensor {
            if *s != State::Live {
                v.push(Violation::Leak {
                    site: "end of schedule".into(),
                    byte: t as i64,
                    len: tb[t],
                    detail: "network output not live for the host".into(),
                });
            }
        } else if *s == State::Live {
            v.push(Violation::Leak {
                site: "end of schedule".into(),
                byte: t as i64,
                len: tb[t],
                detail: "tensor never freed".into(),
            });
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_graph::zoo;

    fn vmcu_costs(graph: &Graph) -> Vec<(usize, usize)> {
        use vmcu_plan::planner::MemoryPlanner;
        graph
            .layers()
            .iter()
            .map(|l| vmcu_plan::VmcuPlanner::default().plan_layer(l))
            .collect()
    }

    #[test]
    fn canonical_schedule_is_clean_on_a_dag() {
        let g = zoo::mbv2_residual_dag();
        let order: Vec<usize> = (0..g.len()).collect();
        let frees = canonical_frees(&g, &order);
        let a = audit_schedule(
            &g,
            &order,
            &frees,
            &vmcu_costs(&g),
            &vmcu_sim::Device::mps3_an547(),
        );
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn canonical_demands_match_price_order() {
        let g = zoo::two_head_net();
        let order: Vec<usize> = (0..g.len()).collect();
        let frees = canonical_frees(&g, &order);
        let a = audit_schedule(
            &g,
            &order,
            &frees,
            &vmcu_costs(&g),
            &vmcu_sim::Device::mps3_an547(),
        );
        let priced = vmcu_plan::order::price_order(&vmcu_plan::VmcuPlanner::default(), &g, &order);
        let expect: Vec<usize> = priced.iter().map(|(act, ws)| act + ws).collect();
        assert_eq!(a.step_demand_bytes, expect);
    }

    #[test]
    fn dropped_free_is_a_leak() {
        let g = zoo::mbv2_residual_dag();
        let order: Vec<usize> = (0..g.len()).collect();
        let mut frees = canonical_frees(&g, &order);
        let step = frees
            .iter()
            .position(|f| !f.is_empty())
            .expect("some free exists");
        frees[step].pop();
        let a = audit_schedule(
            &g,
            &order,
            &frees,
            &vmcu_costs(&g),
            &vmcu_sim::Device::mps3_an547(),
        );
        assert!(
            a.violations
                .iter()
                .any(|v| matches!(v, Violation::Leak { .. })),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn early_free_is_use_after_free() {
        let g = zoo::mbv2_residual_dag();
        let order: Vec<usize> = (0..g.len()).collect();
        let mut frees = canonical_frees(&g, &order);
        // The residual input (tensor of some node consumed late) freed at
        // step 0 instead of its last consumer.
        let (late_step, &t) = frees
            .iter()
            .enumerate()
            .rev()
            .find_map(|(s, f)| f.first().map(|t| (s, t)))
            .expect("some free exists");
        assert!(late_step > 0);
        frees[late_step].retain(|&x| x != t);
        frees[0].push(t);
        let a = audit_schedule(
            &g,
            &order,
            &frees,
            &vmcu_costs(&g),
            &vmcu_sim::Device::mps3_an547(),
        );
        assert!(
            a.violations
                .iter()
                .any(|v| matches!(v, Violation::UseAfterFree { .. })),
            "{:?}",
            a.violations
        );
    }

    #[test]
    fn duplicated_free_is_double_free() {
        let g = zoo::mbv2_residual_dag();
        let order: Vec<usize> = (0..g.len()).collect();
        let mut frees = canonical_frees(&g, &order);
        let step = frees
            .iter()
            .position(|f| !f.is_empty())
            .expect("some free exists");
        let t = frees[step][0];
        let last = frees.len() - 1;
        frees[last].push(t);
        let a = audit_schedule(
            &g,
            &order,
            &frees,
            &vmcu_costs(&g),
            &vmcu_sim::Device::mps3_an547(),
        );
        assert!(
            a.violations
                .iter()
                .any(|v| matches!(v, Violation::DoubleFree { .. })),
            "{:?}",
            a.violations
        );
    }
}
