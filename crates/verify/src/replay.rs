//! Byte-interval replay: a static model of the checked segment pool.
//!
//! [`PoolModel`] mirrors `vmcu_pool::SegmentPool`'s per-byte liveness
//! semantics — circular logical→physical mapping (`rem_euclid(window)`),
//! live-on-store, dead-on-free — but consumes dry-run traces instead of
//! executing kernels, so hazards are proven from plan arithmetic alone.
//!
//! The module also re-derives the minimum execution distance from a
//! trace ([`derive_min_distance`]) with its own interval bookkeeping and
//! independently reproduces it through `vmcu-solver`'s read/write event
//! bound ([`solver_min_distance`]): converting every `Store` to a write
//! of its last byte and every `Free` to a read of its first byte makes
//! the §4 solver answer exactly `D_exec − 1` (the solver allows reuse
//! *at* the last read; an executable free releases only *after* it).

use crate::violation::Violation;
use vmcu_kernels::trace::ExecEvent;
use vmcu_solver::multilayer::min_distance_events;
use vmcu_solver::Event;

/// Static per-byte liveness model of one circular pool window.
#[derive(Debug, Clone)]
pub struct PoolModel {
    window: usize,
    live: Vec<bool>,
}

impl PoolModel {
    /// Creates an all-dead window of `window` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — an empty pool cannot hold a layer.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be non-empty");
        PoolModel {
            window,
            live: vec![false; window],
        }
    }

    /// Window size in bytes.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Currently live bytes.
    pub fn live_bytes(&self) -> usize {
        self.live.iter().filter(|&&b| b).count()
    }

    fn phys(&self, logical: i64) -> usize {
        logical.rem_euclid(self.window as i64) as usize
    }

    /// Marks `[base, base+len)` live as a host fill (staging an input).
    /// A fill over an already-live byte is a [`Violation::Clobber`].
    pub fn fill(&mut self, site: &str, base: i64, len: usize, out: &mut Vec<Violation>) {
        self.store(site, base, len, out);
    }

    /// Replays a producer store: every target byte must be dead, and
    /// becomes live. Overlong stores that wrap onto themselves are
    /// reported as [`Violation::OutOfBounds`].
    pub fn store(&mut self, site: &str, base: i64, len: usize, out: &mut Vec<Violation>) {
        if len > self.window {
            out.push(Violation::OutOfBounds {
                site: site.into(),
                needed: len,
                budget: self.window,
            });
            return;
        }
        let mut clobbered: Option<(i64, usize)> = None;
        for off in 0..len {
            let p = self.phys(base + off as i64);
            if self.live[p] {
                match &mut clobbered {
                    Some((_, n)) => *n += 1,
                    None => clobbered = Some((base + off as i64, 1)),
                }
            }
            self.live[p] = true;
        }
        if let Some((byte, n)) = clobbered {
            out.push(Violation::Clobber {
                site: site.into(),
                byte,
                len: n,
            });
        }
    }

    /// Replays a consumer free: every target byte must be live, and
    /// becomes dead. Freeing a dead byte is a [`Violation::DoubleFree`].
    pub fn free(&mut self, site: &str, base: i64, len: usize, out: &mut Vec<Violation>) {
        if len > self.window {
            out.push(Violation::OutOfBounds {
                site: site.into(),
                needed: len,
                budget: self.window,
            });
            return;
        }
        let mut dead: Option<(i64, usize)> = None;
        for off in 0..len {
            let p = self.phys(base + off as i64);
            if !self.live[p] {
                match &mut dead {
                    Some((_, n)) => *n += 1,
                    None => dead = Some((base + off as i64, 1)),
                }
            }
            self.live[p] = false;
        }
        if let Some((byte, n)) = dead {
            out.push(Violation::DoubleFree {
                site: site.into(),
                byte,
                len: n,
            });
        }
    }

    /// Asserts that exactly `[base, base+len)` is live: stray live bytes
    /// are leaks (inputs never freed); dead bytes inside the range are
    /// outputs never produced. Both report as [`Violation::Leak`].
    pub fn expect_exactly(&self, site: &str, base: i64, len: usize, out: &mut Vec<Violation>) {
        let mut expected = vec![false; self.window];
        for off in 0..len.min(self.window) {
            expected[self.phys(base + off as i64)] = true;
        }
        let stray = self
            .live
            .iter()
            .zip(&expected)
            .filter(|(l, e)| **l && !**e)
            .count();
        if stray > 0 {
            let first = (0..self.window)
                .find(|&p| self.live[p] && !expected[p])
                .unwrap_or(0);
            out.push(Violation::Leak {
                site: site.into(),
                byte: first as i64,
                len: stray,
                detail: "bytes still live that are not part of the output".into(),
            });
        }
        let missing = self
            .live
            .iter()
            .zip(&expected)
            .filter(|(l, e)| !**l && **e)
            .count();
        if missing > 0 {
            let first = (0..self.window)
                .find(|&p| !self.live[p] && expected[p])
                .unwrap_or(0);
            out.push(Violation::Leak {
                site: site.into(),
                byte: first as i64,
                len: missing,
                detail: "output bytes never produced".into(),
            });
        }
    }
}

/// One layer placed in a (possibly shared) pool window, ready to replay.
#[derive(Debug, Clone)]
pub struct LayerSpec<'a> {
    /// Site label for violations.
    pub site: &'a str,
    /// Input bytes (all operands for merge layers).
    pub in_len: usize,
    /// Output bytes.
    pub out_len: usize,
    /// Planned execution distance `b_in − b_out`.
    pub distance: i64,
    /// Pool window the layer runs in.
    pub window: usize,
    /// The kernel's dry-run store/free trace.
    pub events: &'a [ExecEvent],
}

/// Replays one layer standalone: input staged at logical 0, output at
/// `−distance`, full leak check at the end. This is exactly the layout
/// `exec_layer_vmcu` uses at runtime.
pub fn replay_layer(spec: &LayerSpec<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    if spec.window == 0 {
        out.push(Violation::OutOfBounds {
            site: spec.site.into(),
            needed: spec.in_len.max(spec.out_len),
            budget: 0,
        });
        return out;
    }
    let mut pool = PoolModel::new(spec.window);
    pool.fill(spec.site, 0, spec.in_len, &mut out);
    replay_into(
        &mut pool,
        spec.site,
        0,
        -spec.distance,
        spec.events,
        &mut out,
    );
    pool.expect_exactly(spec.site, -spec.distance, spec.out_len, &mut out);
    out
}

/// Replays a trace into an existing pool state with explicit input and
/// output bases — the building block for whole-chain replay, where
/// every layer's bases come from the `ChainPlan` and liveness persists
/// across layers.
pub fn replay_into(
    pool: &mut PoolModel,
    site: &str,
    in_base: i64,
    out_base: i64,
    events: &[ExecEvent],
    out: &mut Vec<Violation>,
) {
    for ev in events {
        match *ev {
            ExecEvent::Store { addr, len } => {
                if len > 0 {
                    pool.store(site, out_base + addr, len, out);
                }
            }
            ExecEvent::Free { addr, len } => {
                if len > 0 {
                    pool.free(site, in_base + addr, len, out);
                }
            }
        }
    }
}

/// Independently re-derives the minimum execution distance of a trace
/// over `in_len` input bytes: for every store, the constraint is its
/// last byte landing strictly below the lowest still-live input byte.
///
/// Malformed frees (out of range, double) are skipped — they surface as
/// their own violations through [`replay_layer`]; this function answers
/// only the placement question. A trace with no stores returns
/// `−in_len` (any placement works).
pub fn derive_min_distance(in_len: usize, events: &[ExecEvent]) -> i64 {
    let mut live = vec![true; in_len];
    let mut lowest = 0usize; // first live input byte (lazily advanced)
    let mut d: Option<i64> = None;
    for ev in events {
        match *ev {
            ExecEvent::Free { addr, len } => {
                if addr < 0 {
                    continue;
                }
                let start = addr as usize;
                for slot in live.iter_mut().take((start + len).min(in_len)).skip(start) {
                    *slot = false;
                }
                while lowest < in_len && !live[lowest] {
                    lowest += 1;
                }
            }
            ExecEvent::Store { addr, len } => {
                if len == 0 {
                    continue;
                }
                let last = addr + len as i64 - 1;
                let need = last - lowest as i64 + 1;
                d = Some(d.map_or(need, |v| v.max(need)));
            }
        }
    }
    d.unwrap_or(-(in_len as i64))
}

/// Reproduces the distance through `vmcu-solver`'s event bound: stores
/// become writes of their last byte, frees reads of their first byte,
/// input bytes never freed read back after the whole trace (they
/// outlive every store), and one virtual read at `in_len` closes the
/// trace — it stands for the first pool byte past the input, which
/// bounds stores issued after the entire input is already freed. The
/// solver's `D*` permits reuse *at* the binding read, an executable
/// free releases only *after* it, so the executable minimum is exactly
/// `D* + 1` — the identity [`check_distance`] enforces.
pub fn solver_min_distance(in_len: usize, events: &[ExecEvent]) -> i64 {
    let mut ev = Vec::new();
    let mut freed = vec![false; in_len];
    let mut any_store = false;
    for e in events {
        match *e {
            ExecEvent::Store { addr, len } => {
                if len > 0 {
                    any_store = true;
                    ev.push(Event::Write(addr + len as i64 - 1));
                }
            }
            ExecEvent::Free { addr, len } => {
                if addr >= 0 {
                    let start = addr as usize;
                    for slot in freed.iter_mut().take((start + len).min(in_len)).skip(start) {
                        *slot = true;
                    }
                }
                ev.push(Event::Read(addr));
            }
        }
    }
    if !any_store {
        return -(in_len as i64);
    }
    for (b, f) in freed.iter().enumerate() {
        if !*f {
            ev.push(Event::Read(b as i64));
        }
    }
    ev.push(Event::Read(in_len as i64));
    match min_distance_events(ev) {
        Some(d_star) => d_star + 1,
        None => -(in_len as i64),
    }
}

/// Cross-checks one trace's distance three ways — the plan's value, this
/// crate's replay bound, and the solver bound — and reports
/// [`Violation::DistanceTooSmall`] when the planned distance is below
/// the derived minimum, or when the two independent derivations diverge
/// (a checker bug surfaced loudly rather than silently certified).
pub fn check_distance(
    site: &str,
    planned: i64,
    in_len: usize,
    events: &[ExecEvent],
) -> Vec<Violation> {
    let derived = derive_min_distance(in_len, events);
    let solver = solver_min_distance(in_len, events);
    let mut out = Vec::new();
    if solver != derived {
        out.push(Violation::DistanceTooSmall {
            site: format!("{site} (solver cross-check: replay {derived} vs solver {solver})"),
            planned,
            derived: derived.max(solver),
        });
    }
    if planned < derived {
        out.push(Violation::DistanceTooSmall {
            site: site.into(),
            planned,
            derived,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_kernels::trace::exec_distance;
    use ExecEvent::{Free, Store};

    #[test]
    fn clean_layer_replays_clean() {
        // Figure-4 style row-granular schedule at its exact distance.
        let events = [
            Store { addr: 0, len: 4 },
            Free { addr: 0, len: 4 },
            Store { addr: 4, len: 4 },
            Free { addr: 4, len: 4 },
        ];
        let d = exec_distance(8, events);
        assert_eq!(d, 4);
        let v = replay_layer(&LayerSpec {
            site: "row",
            in_len: 8,
            out_len: 8,
            distance: d,
            window: 12,
            events: &events,
        });
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn distance_minus_one_clobbers() {
        let events = [
            Store { addr: 0, len: 4 },
            Free { addr: 0, len: 4 },
            Store { addr: 4, len: 4 },
            Free { addr: 4, len: 4 },
        ];
        let d = exec_distance(8, events) - 1;
        let v = replay_layer(&LayerSpec {
            site: "row",
            in_len: 8,
            out_len: 8,
            distance: d,
            window: 11,
            events: &events,
        });
        assert!(
            v.iter().any(|v| matches!(v, Violation::Clobber { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn dropped_free_leaks() {
        let events = [
            Store { addr: 0, len: 4 },
            Free { addr: 0, len: 4 },
            Store { addr: 4, len: 4 },
        ];
        let v = replay_layer(&LayerSpec {
            site: "row",
            in_len: 8,
            out_len: 8,
            distance: 4,
            window: 12,
            events: &events,
        });
        assert!(
            v.iter().any(|v| matches!(v, Violation::Leak { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn duplicated_free_is_double_free() {
        let events = [Free { addr: 0, len: 4 }, Free { addr: 0, len: 4 }];
        let v = replay_layer(&LayerSpec {
            site: "row",
            in_len: 8,
            out_len: 0,
            distance: 0,
            window: 8,
            events: &events,
        });
        assert!(
            v.iter().any(|v| matches!(v, Violation::DoubleFree { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn derived_distance_matches_kernel_bound_and_solver() {
        let cases: Vec<(usize, Vec<ExecEvent>)> = vec![
            (4, vec![Store { addr: 0, len: 2 }]),
            (
                8,
                (0..8)
                    .flat_map(|x| [Free { addr: x, len: 1 }, Store { addr: x, len: 1 }])
                    .collect(),
            ),
            (
                8,
                vec![
                    Store { addr: 0, len: 4 },
                    Free { addr: 0, len: 4 },
                    Store { addr: 4, len: 4 },
                    Free { addr: 4, len: 4 },
                ],
            ),
            (6, vec![Free { addr: 0, len: 6 }, Store { addr: 0, len: 3 }]),
            (5, vec![Free { addr: 0, len: 5 }]),
            // Store after a *partial* interior free: the frontier byte
            // (0) is freed later and is the binding read.
            (
                6,
                vec![
                    Free { addr: 2, len: 2 },
                    Store { addr: 0, len: 2 },
                    Free { addr: 0, len: 2 },
                ],
            ),
        ];
        for (in_len, events) in cases {
            let kernel = exec_distance(in_len, events.iter().copied());
            assert_eq!(
                derive_min_distance(in_len, &events),
                kernel,
                "replay bound @ {events:?}"
            );
            assert_eq!(
                solver_min_distance(in_len, &events),
                kernel,
                "solver bound @ {events:?}"
            );
            assert!(check_distance("t", kernel, in_len, &events).is_empty());
            assert_eq!(check_distance("t", kernel - 1, in_len, &events).len(), 1);
        }
    }
}
