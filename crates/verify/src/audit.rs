//! Per-policy audit dispatch: one entry point, [`audit`], that proves a
//! resolved [`Deployment`] hazard-free from plan arithmetic alone.
//!
//! The auditor never executes a kernel. It takes each kernel's dry-run
//! store/free trace (the same generator the planners consume), places it
//! at the plan's offsets, and replays the byte intervals through
//! [`crate::replay::PoolModel`]; at the graph level it re-derives
//! last-consumer liveness through [`crate::schedule`]; for every
//! overlapped segment it re-derives the minimum execution distance two
//! independent ways and cross-checks the plan against both.

use crate::replay::{check_distance, replay_into, replay_layer, LayerSpec, PoolModel};
use crate::schedule::{audit_schedule, canonical_frees};
use crate::violation::{AuditReport, Violation};
use vmcu::{Deployment, PlannerKind};
use vmcu_graph::{Graph, LayerDesc};
use vmcu_kernels::fused_chain::{chain_exec_trace, chain_workspace_bytes, ChainOp};
use vmcu_kernels::trace::{exec_distance, ExecEvent};
use vmcu_kernels::IbScheme;
use vmcu_plan::fusion::chain_solver_distance;
use vmcu_plan::{ChainPlan, FusionNode, FusionPlan, PatchPlan, SplitPlan};
use vmcu_sim::Device;

/// The dry-run store/free trace the executor's kernel would emit for one
/// layer — the byte-interval event stream the whole audit replays.
pub fn layer_events(layer: &LayerDesc, scheme: IbScheme) -> Vec<ExecEvent> {
    match layer {
        LayerDesc::Pointwise(p) => vmcu_kernels::fc::fc_exec_trace(&p.as_fc()),
        LayerDesc::Conv2d(p) => vmcu_kernels::conv2d::conv2d_exec_trace(p),
        LayerDesc::Depthwise(p) => vmcu_kernels::depthwise::depthwise_exec_trace(p),
        LayerDesc::Dense(p) => vmcu_kernels::fc::fc_exec_trace(p),
        LayerDesc::Ib(p) => vmcu_kernels::fused_ib::ib_exec_trace(p, scheme),
        LayerDesc::Add(p) => vmcu_kernels::merge::add_exec_trace(p),
        LayerDesc::Concat(p) => vmcu_kernels::merge::concat_exec_trace(p),
    }
}

/// The trace of one sliced patch-stage operator.
fn op_events(op: &ChainOp) -> Vec<ExecEvent> {
    match op {
        ChainOp::Pointwise(p) => vmcu_kernels::fc::fc_exec_trace(&p.as_fc()),
        ChainOp::Depthwise(p) => vmcu_kernels::depthwise::depthwise_exec_trace(p),
        ChainOp::Conv2d(p) => vmcu_kernels::conv2d::conv2d_exec_trace(p),
        ChainOp::Dense(p) => vmcu_kernels::fc::fc_exec_trace(p),
    }
}

fn op_io_bytes(op: &ChainOp) -> (usize, usize) {
    match op {
        ChainOp::Pointwise(p) => (p.in_bytes(), p.out_bytes()),
        ChainOp::Depthwise(p) => (p.in_bytes(), p.out_bytes()),
        ChainOp::Conv2d(p) => (p.in_bytes(), p.out_bytes()),
        ChainOp::Dense(p) => (p.in_bytes(), p.out_bytes()),
    }
}

/// Audits one layer in the overlapped per-node layout `exec_layer_vmcu`
/// uses: input at logical 0, output at `−D`, window `(in+max(D,0)) ∨ out`.
/// Returns the violations plus the number of distances cross-checked.
pub fn audit_node(site: &str, layer: &LayerDesc, scheme: IbScheme) -> (Vec<Violation>, usize) {
    let events = layer_events(layer, scheme);
    let in_len = layer.in_bytes();
    let out_len = layer.out_bytes();
    let planned = exec_distance(in_len, events.iter().copied());
    let mut v = check_distance(site, planned, in_len, &events);
    let window = (in_len + planned.max(0) as usize).max(out_len).max(1);
    v.extend(replay_layer(&LayerSpec {
        site,
        in_len,
        out_len,
        distance: planned,
        window,
        events: &events,
    }));
    (v, 1)
}

/// Audits one fused group against its planned window, workspace, and
/// execution distance (including the §5.2 solver lower bound).
pub fn audit_fused_group(
    site: &str,
    group: &vmcu_plan::fusion::FusedGroup,
) -> (Vec<Violation>, usize) {
    let chain = &group.chain;
    let events = chain_exec_trace(chain);
    let in_len = chain.in_bytes();
    let out_len = chain.out_bytes();
    let mut v = check_distance(site, group.exec_distance, in_len, &events);
    if let Some(lower) = chain_solver_distance(chain) {
        if group.exec_distance < lower {
            v.push(Violation::DistanceTooSmall {
                site: format!("{site} (below the §5.2 solver lower bound)"),
                planned: group.exec_distance,
                derived: lower,
            });
        }
    }
    let need_window = (in_len + group.exec_distance.max(0) as usize).max(out_len);
    if group.window < need_window {
        v.push(Violation::OutOfBounds {
            site: site.into(),
            needed: need_window,
            budget: group.window,
        });
    }
    let need_ws = chain_workspace_bytes(chain);
    if group.workspace < need_ws {
        v.push(Violation::OutOfBounds {
            site: format!("{site} (workspace)"),
            needed: need_ws,
            budget: group.workspace,
        });
    }
    v.extend(replay_layer(&LayerSpec {
        site,
        in_len,
        out_len,
        distance: group.exec_distance,
        window: group.window.max(1),
        events: &events,
    }));
    (v, 1)
}

/// Audits a whole-network chained deployment: every tensor base from the
/// plan, one persistent circular window, liveness carried across layers
/// exactly as `Session::infer_chained` executes it.
pub fn audit_chain_plan(
    graph: &Graph,
    plan: &ChainPlan,
    scheme: IbScheme,
    device: &Device,
) -> (Vec<Violation>, usize) {
    let n = graph.len();
    let mut v = Vec::new();
    let mut distances = 0usize;
    if n == 0 {
        return (v, 0);
    }
    if plan.bases.len() != n + 1 || plan.distances.len() != n {
        v.push(Violation::OutOfBounds {
            site: "chain plan shape".into(),
            needed: n + 1,
            budget: plan.bases.len(),
        });
        return (v, 0);
    }
    if plan.total_bytes() + device.runtime_overhead_bytes > device.ram_bytes {
        v.push(Violation::OutOfBounds {
            site: "chain plan total".into(),
            needed: plan.total_bytes() + device.runtime_overhead_bytes,
            budget: device.ram_bytes,
        });
    }
    if plan.window == 0 {
        v.push(Violation::OutOfBounds {
            site: "chain plan window".into(),
            needed: 1,
            budget: 0,
        });
        return (v, 0);
    }
    let mut pool = PoolModel::new(plan.window);
    let in_len = graph.layers()[0].in_bytes();
    pool.fill("chain input", plan.bases[0], in_len, &mut v);
    for (i, layer) in graph.layers().iter().enumerate() {
        let site = format!("chain layer {i} ({})", layer.kind());
        let events = layer_events(layer, scheme);
        let in_bytes = layer.in_bytes();
        // The base chaining identity: b_out = b_in − D.
        if plan.bases[i + 1] != plan.bases[i] - plan.distances[i] {
            v.push(Violation::DistanceTooSmall {
                site: format!(
                    "{site} (base does not compose: b[{}] ≠ b[{i}] − D[{i}])",
                    i + 1
                ),
                planned: plan.bases[i] - plan.bases[i + 1],
                derived: plan.distances[i],
            });
        }
        v.extend(check_distance(&site, plan.distances[i], in_bytes, &events));
        distances += 1;
        // The layer's span must fit the shared window.
        let span = (in_bytes + plan.distances[i].max(0) as usize).max(layer.out_bytes());
        if span > plan.window {
            v.push(Violation::OutOfBounds {
                site: site.clone(),
                needed: span,
                budget: plan.window,
            });
        }
        replay_into(
            &mut pool,
            &site,
            plan.bases[i],
            plan.bases[i + 1],
            &events,
            &mut v,
        );
    }
    let out_len = graph.layers()[n - 1].out_bytes();
    pool.expect_exactly("chain output", plan.bases[n], out_len, &mut v);
    (v, distances)
}

/// Audits a fusion plan node-by-node: singles replay in their overlapped
/// per-node layout, fused groups replay their whole-chain trace, and
/// every node's demand must fit the device.
pub fn audit_fusion_plan(
    graph: &Graph,
    plan: &FusionPlan,
    scheme: IbScheme,
    device: &Device,
) -> (Vec<Violation>, usize, usize) {
    let mut v = Vec::new();
    let mut nodes = 0usize;
    let mut distances = 0usize;
    for node in &plan.nodes {
        nodes += 1;
        match node {
            FusionNode::Single { index, .. } => {
                let Some(layer) = graph.layers().get(*index) else {
                    v.push(Violation::OutOfBounds {
                        site: "fusion plan node index".into(),
                        needed: *index,
                        budget: graph.len(),
                    });
                    continue;
                };
                let site = format!("node {index} ({})", layer.kind());
                let (nv, nd) = audit_node(&site, layer, scheme);
                v.extend(nv);
                distances += nd;
            }
            FusionNode::Fused(group) => {
                let site = format!("fused[{}..={}]", group.start, group.end);
                let (gv, gd) = audit_fused_group(&site, group);
                v.extend(gv);
                distances += gd;
            }
        }
        let demand = node.demand_bytes() + device.runtime_overhead_bytes;
        if demand > device.ram_bytes {
            v.push(Violation::OutOfBounds {
                site: format!("fusion node demand ({})", node.layer_range().0),
                needed: demand,
                budget: device.ram_bytes,
            });
        }
    }
    (v, nodes, distances)
}

/// Audits a patched deployment: the output tiles must partition the
/// front-stage output exactly (a gap is a [`Violation::Leak`], an
/// overlap a [`Violation::Clobber`]), every sliced per-tile operator
/// replays hazard-free in its own slab window, the slab-peak accounting
/// behind `front_demand_bytes` is re-derived, and the tail audits as a
/// fusion plan.
pub fn audit_patch_plan(
    graph: &Graph,
    plan: &PatchPlan,
    scheme: IbScheme,
    device: &Device,
) -> (Vec<Violation>, usize, usize) {
    let mut v = Vec::new();
    let mut nodes = 0usize;
    let mut distances = 0usize;
    if let Some(front) = &plan.front {
        nodes += 1;
        let (oh, ow, oc) = front.out_dims();
        let grid = front.grid();
        let mut covered = vec![0u32; oh * ow];
        let mut slab_peak = 0usize;
        for ty in 0..grid.gy {
            for tx in 0..grid.gx {
                let tile = front.out_tile(ty, tx);
                let site = format!("patch tile ({ty},{tx})");
                if tile.y0 < 0 || tile.x0 < 0 || tile.y1 > oh as i64 || tile.x1 > ow as i64 {
                    v.push(Violation::OutOfBounds {
                        site: site.clone(),
                        needed: tile.y1.max(tile.x1).max(0) as usize,
                        budget: oh.max(ow),
                    });
                    continue;
                }
                for y in tile.y0..tile.y1 {
                    for x in tile.x0..tile.x1 {
                        covered[y as usize * ow + x as usize] += 1;
                    }
                }
                for (si, stage) in front.patch_stages(ty, tx).iter().enumerate() {
                    let stage_site = format!("{site} stage {si} ({})", stage.op.kind());
                    let events = op_events(&stage.op);
                    let (in_len, out_len) = op_io_bytes(&stage.op);
                    let d = exec_distance(in_len, events.iter().copied());
                    v.extend(check_distance(&stage_site, d, in_len, &events));
                    distances += 1;
                    let window = (in_len + d.max(0) as usize).max(out_len).max(1);
                    slab_peak = slab_peak.max(window);
                    v.extend(replay_layer(&LayerSpec {
                        site: &stage_site,
                        in_len,
                        out_len,
                        distance: d,
                        window,
                        events: &events,
                    }));
                }
            }
        }
        // Exact tiling of the front output.
        if let Some(first_gap) = covered.iter().position(|&c| c == 0) {
            let gaps = covered.iter().filter(|&&c| c == 0).count();
            v.push(Violation::Leak {
                site: "patch tiling".into(),
                byte: (first_gap * oc) as i64,
                len: gaps * oc,
                detail: "front output pixels no tile produces".into(),
            });
        }
        if let Some(first_dup) = covered.iter().position(|&c| c > 1) {
            let dups = covered.iter().filter(|&&c| c > 1).count();
            v.push(Violation::Clobber {
                site: "patch tiling".into(),
                byte: (first_dup * oc) as i64,
                len: dups * oc,
            });
        }
        // Slab-peak accounting: the plan's front demand must cover the
        // worst sliced window plus the front-output accumulator.
        let need = slab_peak + oh * ow * oc;
        if plan.front_demand_bytes < need {
            v.push(Violation::OutOfBounds {
                site: "patched front demand".into(),
                needed: need,
                budget: plan.front_demand_bytes,
            });
        }
        if plan.front_demand_bytes + device.runtime_overhead_bytes > device.ram_bytes {
            v.push(Violation::OutOfBounds {
                site: "patched front demand".into(),
                needed: plan.front_demand_bytes + device.runtime_overhead_bytes,
                budget: device.ram_bytes,
            });
        }
    }
    let (tv, tn, td) = audit_fusion_plan(graph, &plan.tail, scheme, device);
    v.extend(tv);
    (v, nodes + tn, distances + td)
}

/// Audits a split deployment: the stages must partition the chain
/// contiguously, boundary activations must agree byte-for-byte in size,
/// and every stage audits as its own fusion plan on its own device.
pub fn audit_split_plan(
    graph: &Graph,
    plan: &SplitPlan,
    scheme: IbScheme,
    device: &Device,
) -> (Vec<Violation>, usize, usize) {
    let mut v = Vec::new();
    let mut nodes = 0usize;
    let mut distances = 0usize;
    let stages = plan.stages();
    if stages.is_empty() {
        return (v, 0, 0);
    }
    let mut expect_start = 0usize;
    for (k, stage) in stages.iter().enumerate() {
        let site = format!("split stage {k} (dev{})", stage.device);
        if stage.start != expect_start {
            v.push(Violation::Leak {
                site: format!("{site} boundary"),
                byte: expect_start as i64,
                len: stage.start.abs_diff(expect_start),
                detail: "stages do not partition the layer range contiguously".into(),
            });
        }
        expect_start = stage.end;
        let (sv, sn, sd) = audit_fusion_plan(&stage.graph, &stage.fusion, scheme, device);
        v.extend(sv.into_iter().map(|viol| prefix_site(&site, viol)));
        nodes += sn;
        distances += sd;
        if stage.demand_bytes + device.runtime_overhead_bytes > device.ram_bytes {
            v.push(Violation::OutOfBounds {
                site: site.clone(),
                needed: stage.demand_bytes + device.runtime_overhead_bytes,
                budget: device.ram_bytes,
            });
        }
        // Boundary activation continuity: the cut tensor leaving this
        // stage must be exactly the next stage's input.
        if k + 1 < stages.len() {
            let out_bytes = graph
                .layers()
                .get(stage.end.wrapping_sub(1))
                .map_or(0, LayerDesc::out_bytes);
            let next_in: usize = stages[k + 1].graph.in_shape().iter().product();
            if stage.cut_bytes != out_bytes || next_in != out_bytes {
                v.push(Violation::OutOfBounds {
                    site: format!("{site} cut tensor"),
                    needed: out_bytes,
                    budget: stage.cut_bytes.min(next_in),
                });
            }
        }
    }
    if expect_start != graph.len() {
        v.push(Violation::Leak {
            site: "split coverage".into(),
            byte: expect_start as i64,
            len: graph.len().saturating_sub(expect_start),
            detail: "trailing layers no stage executes".into(),
        });
    }
    (v, nodes, distances)
}

fn prefix_site(prefix: &str, v: Violation) -> Violation {
    let tag = |site: String| format!("{prefix}: {site}");
    match v {
        Violation::Clobber { site, byte, len } => Violation::Clobber {
            site: tag(site),
            byte,
            len,
        },
        Violation::OutOfBounds {
            site,
            needed,
            budget,
        } => Violation::OutOfBounds {
            site: tag(site),
            needed,
            budget,
        },
        Violation::Leak {
            site,
            byte,
            len,
            detail,
        } => Violation::Leak {
            site: tag(site),
            byte,
            len,
            detail,
        },
        Violation::DoubleFree { site, byte, len } => Violation::DoubleFree {
            site: tag(site),
            byte,
            len,
        },
        Violation::DistanceTooSmall {
            site,
            planned,
            derived,
        } => Violation::DistanceTooSmall {
            site: tag(site),
            planned,
            derived,
        },
        Violation::UseAfterFree {
            site,
            tensor,
            detail,
        } => Violation::UseAfterFree {
            site: tag(site),
            tensor,
            detail,
        },
    }
}

fn scheme_of(kind: PlannerKind) -> IbScheme {
    match kind {
        PlannerKind::Vmcu(s)
        | PlannerKind::VmcuFused(s)
        | PlannerKind::VmcuPatched(s)
        | PlannerKind::VmcuReorder(s) => s,
        PlannerKind::VmcuSplit { scheme, .. } => scheme,
        PlannerKind::TinyEngine | PlannerKind::Hmcos => IbScheme::RowBuffer,
    }
}

/// Whether the policy executes each graph node in its own per-layer
/// window (so plan rows are step-aligned and the per-step RAM budget is
/// enforced at the schedule level).
fn per_layer_policy(kind: PlannerKind) -> bool {
    matches!(
        kind,
        PlannerKind::Vmcu(_)
            | PlannerKind::TinyEngine
            | PlannerKind::Hmcos
            | PlannerKind::VmcuReorder(_)
    )
}

/// Whether the policy's executor runs overlapped vMCU kernels per node
/// (baselines place whole disjoint tensors instead, so the overlap
/// replay does not model their layout).
fn overlapped_policy(kind: PlannerKind) -> bool {
    matches!(kind, PlannerKind::Vmcu(_) | PlannerKind::VmcuReorder(_))
}

/// Statically audits a resolved deployment, proving (or refuting) the
/// hazard-freedom of its memory plan without executing a kernel.
pub fn audit(dep: &Deployment) -> AuditReport {
    let graph = dep.graph();
    let device = dep.device();
    let kind = dep.planner_kind();
    let scheme = scheme_of(kind);
    let n = graph.len();
    let mut report = AuditReport {
        planner: kind.name().to_string(),
        model: format!(
            "{n}-node {}",
            if graph.is_chain() { "chain" } else { "dag" }
        ),
        device: device.name.clone(),
        ..AuditReport::default()
    };
    if n == 0 {
        return report;
    }

    // 1. Schedule-level liveness audit (every policy): producer-before-
    //    consumer, freed exactly once at the last consumer, per-step
    //    demand. Policies that do not execute per-layer windows (fusion
    //    groups, patched tiles, split stages) enforce their budget at the
    //    artifact level instead, so the schedule pass only checks
    //    liveness for them.
    let order: Vec<usize> = dep
        .order_plan()
        .map_or_else(|| (0..n).collect(), |p| p.order.clone());
    let frees = canonical_frees(graph, &order);
    let costs: Vec<(usize, usize)> = graph
        .layers()
        .iter()
        .map(|l| dep.planner().plan_layer(l))
        .collect();
    let budget_device = if per_layer_policy(kind) {
        device.clone()
    } else {
        Device {
            ram_bytes: usize::MAX / 2,
            ..device.clone()
        }
    };
    let sched = audit_schedule(graph, &order, &frees, &costs, &budget_device);
    report.violations.extend(sched.violations);
    report.nodes_checked += n;

    // 2. Plan-row cross-check for per-layer policies: rows are step-
    //    aligned, so row k must price at least the independently derived
    //    demand of the k-th executed node.
    if per_layer_policy(kind) {
        let rows = &dep.plan().layers;
        if rows.len() == sched.step_demand_bytes.len() {
            for (k, (row, derived)) in rows.iter().zip(&sched.step_demand_bytes).enumerate() {
                let need = derived + device.runtime_overhead_bytes;
                if row.measured_bytes < need {
                    report.violations.push(Violation::OutOfBounds {
                        site: format!("plan row {k} ({}) under-prices the step", row.name),
                        needed: need,
                        budget: row.measured_bytes,
                    });
                }
                if row.fits && row.measured_bytes > device.ram_bytes {
                    report.violations.push(Violation::OutOfBounds {
                        site: format!("plan row {k} ({}) claims fit", row.name),
                        needed: row.measured_bytes,
                        budget: device.ram_bytes,
                    });
                }
            }
        } else {
            report.violations.push(Violation::OutOfBounds {
                site: "plan rows are not step-aligned".into(),
                needed: sched.step_demand_bytes.len(),
                budget: rows.len(),
            });
        }
    }

    // 3. Per-node overlapped replay for policies running vMCU kernels in
    //    per-layer windows.
    if overlapped_policy(kind) {
        for (i, layer) in graph.layers().iter().enumerate() {
            let site = format!("node {i} ({})", layer.kind());
            let (v, d) = audit_node(&site, layer, scheme);
            report.violations.extend(v);
            report.distances_checked += d;
        }
    }

    // 4. Artifact-specific audits.
    if let Some(chain) = dep.chain_plan() {
        let (v, d) = audit_chain_plan(graph, chain, scheme, device);
        report.violations.extend(v);
        report.distances_checked += d;
    }
    if matches!(kind, PlannerKind::VmcuFused(_)) {
        if let Some(fusion) = dep.fusion_plan() {
            let (v, nodes, d) = audit_fusion_plan(graph, fusion, scheme, device);
            report.violations.extend(v);
            report.nodes_checked += nodes;
            report.distances_checked += d;
        }
    }
    if let Some(patch) = dep.patch_plan() {
        let (v, nodes, d) = audit_patch_plan(graph, patch, scheme, device);
        report.violations.extend(v);
        report.nodes_checked += nodes;
        report.distances_checked += d;
    }
    if let Some(split) = dep.split_plan() {
        let (v, nodes, d) = audit_split_plan(graph, split, scheme, device);
        report.violations.extend(v);
        report.nodes_checked += nodes;
        report.distances_checked += d;
    }
    if let Some(order_plan) = dep.order_plan() {
        if order_plan.step_demand_bytes.len() == sched.step_demand_bytes.len() {
            for (k, (planned, derived)) in order_plan
                .step_demand_bytes
                .iter()
                .zip(&sched.step_demand_bytes)
                .enumerate()
            {
                if planned < derived {
                    report.violations.push(Violation::OutOfBounds {
                        site: format!("order plan step {k} under-prices demand"),
                        needed: *derived,
                        budget: *planned,
                    });
                }
            }
        }
        let peak = sched.step_demand_bytes.iter().copied().max().unwrap_or(0);
        if order_plan.peak_bytes < peak {
            report.violations.push(Violation::OutOfBounds {
                site: "order plan peak under-prices demand".into(),
                needed: peak,
                budget: order_plan.peak_bytes,
            });
        }
    }
    report
}
