//! Fluent kernel builder — the Rust stand-in for the paper's Python
//! programming interface (§6).
//!
//! The paper reduces kernel-development difficulty by letting developers
//! write loop nests and intrinsic calls in Python, then lowering to C. Here
//! the same role is played by a closure-based builder that produces
//! [`Kernel`] IR; `vmcu-codegen` lowers that IR to C or interprets it on
//! the simulator.
//!
//! # Examples
//!
//! A miniature fully-connected kernel skeleton (compare Figure 4):
//!
//! ```
//! use vmcu_ir::builder::KernelBuilder;
//! use vmcu_ir::expr::Expr;
//!
//! let mut kb = KernelBuilder::new("fc");
//! kb.param("in_base");
//! kb.param("out_base");
//! kb.for_("m", Expr::var("M"), |kb| {
//!     let m = Expr::var("m");
//!     kb.reg_alloc_i8("val_a", 16, 0);
//!     kb.reg_alloc_i32("acc", 16, 0);
//!     kb.reg_alloc_i8("out", 16, 0);
//!     kb.ram_load("val_a", 0, Expr::var("in_base") + m * 16, 16);
//!     // ... dot-product intrinsics accumulate into `acc` ...
//!     // RAM stores are byte-wide: requantize the Int32 accumulator
//!     // into an Int8 register before storing, as Figure 4 does.
//!     kb.requant("out", 0, "acc", 0, 16, 1 << 30, 1, 0);
//!     kb.ram_store("out", 0, Expr::var("out_base") + Expr::var("m") * 16, 16);
//! });
//! let kernel = kb.finish();
//! assert_eq!(kernel.name, "fc");
//! assert_eq!(kernel.body.loop_depth(), 1);
//! ```

use crate::expr::Expr;
use crate::stmt::{DType, Kernel, Stmt};

/// Incrementally builds a [`Kernel`].
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<String>,
    stack: Vec<Vec<Stmt>>,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            stack: vec![Vec::new()],
        }
    }

    /// Declares a run-time integer parameter (tensor base address or size).
    pub fn param(&mut self, name: impl Into<String>) -> &mut Self {
        self.params.push(name.into());
        self
    }

    fn push(&mut self, s: Stmt) -> &mut Self {
        self.stack
            .last_mut()
            .expect("builder scope stack is never empty")
            .push(s);
        self
    }

    /// Emits a sequential loop `for var in (0..extent).step_by(step)`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn for_step(
        &mut self,
        var: impl Into<String>,
        extent: impl Into<Expr>,
        step: i64,
        unroll: bool,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        assert!(step > 0, "loop step must be positive");
        self.stack.push(Vec::new());
        body(self);
        let stmts = self.stack.pop().expect("matching scope push");
        let stmt = Stmt::For {
            var: var.into(),
            extent: extent.into(),
            step,
            unroll,
            body: Box::new(Stmt::seq(stmts)),
        };
        self.push(stmt)
    }

    /// Emits a unit-step, non-unrolled loop.
    pub fn for_(
        &mut self,
        var: impl Into<String>,
        extent: impl Into<Expr>,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.for_step(var, extent, 1, false, body)
    }

    /// Emits a fully-unrolled unit-step loop (vMCU unrolls innermost
    /// reduction loops to avoid pipeline stalls, §7.2).
    pub fn for_unrolled(
        &mut self,
        var: impl Into<String>,
        extent: impl Into<Expr>,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.for_step(var, extent, 1, true, body)
    }

    /// `RegAlloc` of int32 accumulators.
    pub fn reg_alloc_i32(&mut self, name: impl Into<String>, len: usize, init: i32) -> &mut Self {
        self.push(Stmt::RegAlloc {
            name: name.into(),
            len,
            dtype: DType::Int32,
            init,
        })
    }

    /// `RegAlloc` of int8 data registers.
    pub fn reg_alloc_i8(&mut self, name: impl Into<String>, len: usize, init: i32) -> &mut Self {
        self.push(Stmt::RegAlloc {
            name: name.into(),
            len,
            dtype: DType::Int8,
            init,
        })
    }

    /// `RAMLoad` intrinsic.
    pub fn ram_load(
        &mut self,
        dst: impl Into<String>,
        dst_off: impl Into<Expr>,
        addr: impl Into<Expr>,
        len: impl Into<Expr>,
    ) -> &mut Self {
        self.push(Stmt::RamLoad {
            dst: dst.into(),
            dst_off: dst_off.into(),
            addr: addr.into(),
            len: len.into(),
        })
    }

    /// `FlashLoad` intrinsic.
    pub fn flash_load(
        &mut self,
        dst: impl Into<String>,
        dst_off: impl Into<Expr>,
        addr: impl Into<Expr>,
        len: impl Into<Expr>,
    ) -> &mut Self {
        self.push(Stmt::FlashLoad {
            dst: dst.into(),
            dst_off: dst_off.into(),
            addr: addr.into(),
            len: len.into(),
        })
    }

    /// `Dot` intrinsic: `acc[acc_off..acc_off+ni] += a[a_off..] · b`.
    #[allow(clippy::too_many_arguments)]
    pub fn dot(
        &mut self,
        acc: impl Into<String>,
        acc_off: impl Into<Expr>,
        a: impl Into<String>,
        a_off: impl Into<Expr>,
        b: impl Into<String>,
        b_off: impl Into<Expr>,
        ki: usize,
        ni: usize,
    ) -> &mut Self {
        self.push(Stmt::Dot {
            acc: acc.into(),
            acc_off: acc_off.into(),
            a: a.into(),
            a_off: a_off.into(),
            b: b.into(),
            b_off: b_off.into(),
            ki,
            ni,
        })
    }

    /// `RAMStore` intrinsic.
    pub fn ram_store(
        &mut self,
        src: impl Into<String>,
        src_off: impl Into<Expr>,
        addr: impl Into<Expr>,
        len: impl Into<Expr>,
    ) -> &mut Self {
        self.push(Stmt::RamStore {
            src: src.into(),
            src_off: src_off.into(),
            addr: addr.into(),
            len: len.into(),
        })
    }

    /// `RAMFree` intrinsic.
    pub fn ram_free(&mut self, addr: impl Into<Expr>, len: impl Into<Expr>) -> &mut Self {
        self.push(Stmt::RamFree {
            addr: addr.into(),
            len: len.into(),
        })
    }

    /// `Broadcast` intrinsic.
    pub fn broadcast(
        &mut self,
        dst: impl Into<String>,
        dst_off: impl Into<Expr>,
        value: impl Into<Expr>,
        len: usize,
    ) -> &mut Self {
        self.push(Stmt::Broadcast {
            dst: dst.into(),
            dst_off: dst_off.into(),
            value: value.into(),
            len,
        })
    }

    /// Requantization epilogue.
    #[allow(clippy::too_many_arguments)]
    pub fn requant(
        &mut self,
        dst: impl Into<String>,
        dst_off: impl Into<Expr>,
        src: impl Into<String>,
        src_off: impl Into<Expr>,
        len: usize,
        mult: i32,
        shift: i32,
        zp: i32,
    ) -> &mut Self {
        self.push(Stmt::Requant {
            dst: dst.into(),
            dst_off: dst_off.into(),
            src: src.into(),
            src_off: src_off.into(),
            len,
            mult,
            shift,
            zp,
        })
    }

    /// Scalar binding.
    pub fn let_(&mut self, name: impl Into<String>, value: impl Into<Expr>) -> &mut Self {
        self.push(Stmt::Let {
            name: name.into(),
            value: value.into(),
        })
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    ///
    /// Panics if a loop scope was left open (programmer error in builder
    /// usage — cannot happen through the closure API).
    pub fn finish(mut self) -> Kernel {
        assert_eq!(self.stack.len(), 1, "unclosed builder scope");
        let body = Stmt::seq(self.stack.pop().expect("root scope"));
        Kernel::new(self.name, self.params, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_loops() {
        let mut kb = KernelBuilder::new("k");
        kb.for_("m", 4, |kb| {
            kb.for_unrolled("k", 16, |kb| {
                kb.ram_free(Expr::var("m") * 16 + Expr::var("k"), 1);
            });
        });
        let kernel = kb.finish();
        assert_eq!(kernel.body.loop_depth(), 2);
        let mut unrolled = 0;
        kernel.body.visit(&mut |s| {
            if let Stmt::For { unroll: true, .. } = s {
                unrolled += 1;
            }
        });
        assert_eq!(unrolled, 1);
    }

    #[test]
    fn params_are_recorded_in_order() {
        let mut kb = KernelBuilder::new("k");
        kb.param("in_base").param("out_base").param("M");
        let kernel = kb.finish();
        assert_eq!(kernel.params, vec!["in_base", "out_base", "M"]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_step() {
        let mut kb = KernelBuilder::new("k");
        kb.for_step("i", 4, 0, false, |_| {});
    }

    #[test]
    fn intrinsics_append_in_program_order() {
        let mut kb = KernelBuilder::new("k");
        kb.reg_alloc_i32("acc", 8, 0)
            .ram_load("a", 0, 0, 8)
            .flash_load("w", 0, 0, 64)
            .dot("acc", 0, "a", 0, "w", 0, 8, 1)
            .requant("q", 0, "acc", 0, 1, 1 << 30, 1, 0)
            .ram_store("q", 0, 128, 1)
            .ram_free(0, 8);
        let kernel = kb.finish();
        match &kernel.body {
            Stmt::Seq(v) => {
                assert_eq!(v.len(), 7);
                assert!(matches!(v[0], Stmt::RegAlloc { .. }));
                assert!(matches!(v[6], Stmt::RamFree { .. }));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }
}
