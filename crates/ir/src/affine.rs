//! Integer affine machinery used by the memory-management formulation (§4).
//!
//! The paper models a kernel as an *iteration domain* of instances `S[i]`,
//! each accessing tensors through *access functions* `u = A·i + V` and
//! reaching linear memory through row-major *mapping vectors* `L`, so that
//! the pool address of an access is `L·(A·i + V) + b`. This module provides
//! exactly those pieces as plain integer types.

use std::fmt;

/// A rectangular (box) iteration domain: `0 <= i[c] < extents[c]` for every
/// dimension `c`.
///
/// The paper writes domains as affine constraints `H·i + B < 0`; all kernels
/// it considers (GEMM, convolution, fused inverted bottleneck) have box
/// domains, which is what we implement. Points are iterated in
/// lexicographic (row-major) order, matching the execution order assumed by
/// the formulation.
///
/// # Examples
///
/// ```
/// use vmcu_ir::affine::IterDomain;
/// let dom = IterDomain::new(vec![2, 3]);
/// assert_eq!(dom.count(), 6);
/// let pts: Vec<Vec<i64>> = dom.points().collect();
/// assert_eq!(pts[0], vec![0, 0]);
/// assert_eq!(pts[5], vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IterDomain {
    extents: Vec<i64>,
}

impl IterDomain {
    /// Creates a domain with the given per-dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is not strictly positive.
    pub fn new(extents: Vec<i64>) -> Self {
        assert!(
            extents.iter().all(|&e| e > 0),
            "iteration extents must be positive, got {extents:?}"
        );
        Self { extents }
    }

    /// Number of dimensions of the domain.
    pub fn dims(&self) -> usize {
        self.extents.len()
    }

    /// Per-dimension extents.
    pub fn extents(&self) -> &[i64] {
        &self.extents
    }

    /// Total number of iteration instances.
    pub fn count(&self) -> i64 {
        self.extents.iter().product()
    }

    /// Whether `point` lies inside the domain.
    pub fn contains(&self, point: &[i64]) -> bool {
        point.len() == self.dims()
            && point
                .iter()
                .zip(&self.extents)
                .all(|(&p, &e)| p >= 0 && p < e)
    }

    /// Iterates all points in lexicographic order.
    pub fn points(&self) -> Points {
        Points {
            extents: self.extents.clone(),
            next: if self.count() == 0 {
                None
            } else {
                Some(vec![0; self.extents.len()])
            },
        }
    }

    /// The lexicographically last point of the domain.
    pub fn last_point(&self) -> Vec<i64> {
        self.extents.iter().map(|&e| e - 1).collect()
    }
}

impl fmt::Display for IterDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ 0 <= i < {:?} }}", self.extents)
    }
}

/// Iterator over the points of an [`IterDomain`] in lexicographic order.
#[derive(Debug, Clone)]
pub struct Points {
    extents: Vec<i64>,
    next: Option<Vec<i64>>,
}

impl Iterator for Points {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.next.clone()?;
        // Odometer increment from the innermost dimension.
        let mut succ = current.clone();
        let mut dim = succ.len();
        loop {
            if dim == 0 {
                self.next = None;
                break;
            }
            dim -= 1;
            succ[dim] += 1;
            if succ[dim] < self.extents[dim] {
                self.next = Some(succ);
                break;
            }
            succ[dim] = 0;
        }
        Some(current)
    }
}

/// Returns `true` when `a` is lexicographically strictly less than `b`.
///
/// # Panics
///
/// Panics if the two points have different dimensionality.
pub fn lex_lt(a: &[i64], b: &[i64]) -> bool {
    assert_eq!(a.len(), b.len(), "lex comparison of mismatched dims");
    a < b
}

/// Returns `true` when `a <= b` in lexicographic order (the `j <= i`
/// relation of constraint (1) in the paper).
///
/// # Panics
///
/// Panics if the two points have different dimensionality.
pub fn lex_le(a: &[i64], b: &[i64]) -> bool {
    assert_eq!(a.len(), b.len(), "lex comparison of mismatched dims");
    a <= b
}

/// An integer affine map `u = mat · i + off` from iteration vectors to
/// tensor index vectors (the paper's access matrices `A_u` and offset
/// vectors `V_u`).
///
/// # Examples
///
/// The GEMM input access `S[m,n,k] -> In[m,k]` from Figure 3:
///
/// ```
/// use vmcu_ir::affine::AffineMap;
/// let a_in = AffineMap::new(vec![vec![1, 0, 0], vec![0, 0, 1]], vec![0, 0]);
/// assert_eq!(a_in.apply(&[4, 7, 2]), vec![4, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineMap {
    mat: Vec<Vec<i64>>,
    off: Vec<i64>,
}

impl AffineMap {
    /// Creates a map from its matrix rows and offset vector.
    ///
    /// # Panics
    ///
    /// Panics if the number of rows differs from the offset length, or the
    /// rows have inconsistent widths.
    pub fn new(mat: Vec<Vec<i64>>, off: Vec<i64>) -> Self {
        assert_eq!(mat.len(), off.len(), "rows must match offset length");
        if let Some(first) = mat.first() {
            let w = first.len();
            assert!(
                mat.iter().all(|r| r.len() == w),
                "affine map rows must have equal width"
            );
        }
        Self { mat, off }
    }

    /// The identity map over `dims` dimensions.
    pub fn identity(dims: usize) -> Self {
        let mat = (0..dims)
            .map(|r| (0..dims).map(|c| i64::from(r == c)).collect())
            .collect();
        Self::new(mat, vec![0; dims])
    }

    /// Number of input dimensions (columns).
    pub fn in_dims(&self) -> usize {
        self.mat.first().map_or(0, Vec::len)
    }

    /// Number of output dimensions (rows).
    pub fn out_dims(&self) -> usize {
        self.mat.len()
    }

    /// Matrix rows.
    pub fn rows(&self) -> &[Vec<i64>] {
        &self.mat
    }

    /// Offset vector (the paper's `V`).
    pub fn offset(&self) -> &[i64] {
        &self.off
    }

    /// Applies the map to an iteration point.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not match the map's input dimensionality.
    pub fn apply(&self, i: &[i64]) -> Vec<i64> {
        assert_eq!(i.len(), self.in_dims(), "point/map dimension mismatch");
        self.mat
            .iter()
            .zip(&self.off)
            .map(|(row, &v)| row.iter().zip(i).map(|(&a, &x)| a * x).sum::<i64>() + v)
            .collect()
    }
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u = {:?}·i + {:?}", self.mat, self.off)
    }
}

/// Row-major strides for a tensor shape — the paper's *mapping vector*
/// `L`. For shape `[M, K]` the strides are `[K, 1]`.
///
/// # Examples
///
/// ```
/// use vmcu_ir::affine::row_major_strides;
/// assert_eq!(row_major_strides(&[4, 8, 3]), vec![24, 3, 1]);
/// ```
///
/// # Panics
///
/// Panics if any shape entry is not strictly positive.
pub fn row_major_strides(shape: &[i64]) -> Vec<i64> {
    assert!(
        shape.iter().all(|&e| e > 0),
        "tensor shape entries must be positive, got {shape:?}"
    );
    let mut strides = vec![1i64; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    strides
}

/// A fully composed linear address expression `addr(i) = coef · i + off`:
/// the mapping vector applied to an access function, i.e.
/// `L·(A·i + V)` flattened into a single coefficient vector.
///
/// This is the object the footprint solver actually optimizes over.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinearAccess {
    /// Per-iteration-dimension address coefficients (`L·A`).
    pub coef: Vec<i64>,
    /// Constant address offset (`L·V`).
    pub off: i64,
}

impl LinearAccess {
    /// Builds the address expression from a mapping vector (row-major
    /// tensor strides) and an access function.
    ///
    /// # Panics
    ///
    /// Panics if `strides` does not match the access map's output
    /// dimensionality.
    pub fn compose(strides: &[i64], access: &AffineMap) -> Self {
        assert_eq!(
            strides.len(),
            access.out_dims(),
            "mapping vector must match access output dims"
        );
        let dims = access.in_dims();
        let mut coef = vec![0i64; dims];
        for (s, row) in strides.iter().zip(access.rows()) {
            for (c, a) in coef.iter_mut().zip(row) {
                *c += s * a;
            }
        }
        let off = strides
            .iter()
            .zip(access.offset())
            .map(|(&s, &v)| s * v)
            .sum();
        Self { coef, off }
    }

    /// Direct construction from coefficients and offset.
    pub fn new(coef: Vec<i64>, off: i64) -> Self {
        Self { coef, off }
    }

    /// Evaluates the address at iteration point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` has the wrong dimensionality.
    pub fn eval(&self, i: &[i64]) -> i64 {
        assert_eq!(i.len(), self.coef.len(), "point dimension mismatch");
        self.coef.iter().zip(i).map(|(&c, &x)| c * x).sum::<i64>() + self.off
    }

    /// Number of iteration dimensions this access ranges over.
    pub fn dims(&self) -> usize {
        self.coef.len()
    }
}

impl fmt::Display for LinearAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr(i) = {:?}·i + {}", self.coef, self.off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_iterates_in_lex_order() {
        let dom = IterDomain::new(vec![2, 2, 2]);
        let pts: Vec<_> = dom.points().collect();
        assert_eq!(pts.len(), 8);
        for w in pts.windows(2) {
            assert!(lex_lt(&w[0], &w[1]));
        }
        assert_eq!(pts[0], vec![0, 0, 0]);
        assert_eq!(*pts.last().unwrap(), dom.last_point());
    }

    #[test]
    fn domain_count_matches_iteration() {
        for extents in [vec![1], vec![3, 1, 2], vec![5, 4]] {
            let dom = IterDomain::new(extents);
            assert_eq!(dom.points().count() as i64, dom.count());
        }
    }

    #[test]
    fn domain_contains_checks_bounds() {
        let dom = IterDomain::new(vec![3, 4]);
        assert!(dom.contains(&[0, 0]));
        assert!(dom.contains(&[2, 3]));
        assert!(!dom.contains(&[3, 0]));
        assert!(!dom.contains(&[0, -1]));
        assert!(!dom.contains(&[0]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn domain_rejects_zero_extent() {
        let _ = IterDomain::new(vec![2, 0]);
    }

    #[test]
    fn identity_map_is_identity() {
        let id = AffineMap::identity(3);
        assert_eq!(id.apply(&[5, -2, 7]), vec![5, -2, 7]);
    }

    #[test]
    fn gemm_access_maps_match_figure_3() {
        // In: S[m,n,k] -> In[m,k];  Out: S[m,n,k] -> Out[m,n]
        let a_in = AffineMap::new(vec![vec![1, 0, 0], vec![0, 0, 1]], vec![0, 0]);
        let a_out = AffineMap::new(vec![vec![1, 0, 0], vec![0, 1, 0]], vec![0, 0]);
        assert_eq!(a_in.apply(&[2, 5, 1]), vec![2, 1]);
        assert_eq!(a_out.apply(&[2, 5, 1]), vec![2, 5]);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(row_major_strides(&[7]), vec![1]);
        assert_eq!(row_major_strides(&[2, 3]), vec![3, 1]);
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
    }

    #[test]
    fn linear_access_composes_figure_3_example() {
        // In[m,k] with shape [M,K]=[.,3]: mapping vector [K,1]=[3,1].
        // addr = 3m + k for S[m,n,k].
        let a_in = AffineMap::new(vec![vec![1, 0, 0], vec![0, 0, 1]], vec![0, 0]);
        let acc = LinearAccess::compose(&[3, 1], &a_in);
        assert_eq!(acc.coef, vec![3, 0, 1]);
        assert_eq!(acc.off, 0);
        assert_eq!(acc.eval(&[2, 9, 1]), 7);
    }

    #[test]
    fn linear_access_carries_constant_offsets() {
        // Access with V = [1, -1] (e.g. a convolution window shift).
        let a = AffineMap::new(vec![vec![1, 0], vec![0, 1]], vec![1, -1]);
        let acc = LinearAccess::compose(&[10, 1], &a);
        assert_eq!(acc.off, 9);
        assert_eq!(acc.eval(&[0, 0]), 9);
        assert_eq!(acc.eval(&[2, 3]), 32);
    }

    #[test]
    fn lex_relations() {
        assert!(lex_lt(&[0, 5], &[1, 0]));
        assert!(lex_le(&[1, 0], &[1, 0]));
        assert!(!lex_lt(&[1, 0], &[1, 0]));
        assert!(!lex_le(&[1, 1], &[1, 0]));
    }
}
