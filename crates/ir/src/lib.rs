//! # vmcu-ir — affine formulation and kernel IR for the vMCU reproduction
//!
//! This crate provides the two "language" layers of vMCU (MLSys 2024):
//!
//! * [`affine`] — the §4 memory-management formulation: iteration domains,
//!   access functions (`u = A·i + V`), row-major mapping vectors, and
//!   composed linear address expressions. The footprint solver
//!   (`vmcu-solver`) optimizes over these objects.
//! * [`expr`], [`stmt`], [`builder`] — the §6 compiler-support IR: scalar
//!   expressions, statements with one variant per vMCU intrinsic
//!   (`RegAlloc`, `RAMLoad`, `FlashLoad`, `Dot`, `RAMStore`, `RAMFree`,
//!   `Broadcast`), and a fluent [`builder::KernelBuilder`] standing in for
//!   the paper's Python interface.
//! * [`validate`] — structural well-formedness checks run before lowering.
//!
//! # Examples
//!
//! Formulating the GEMM example of Figure 3:
//!
//! ```
//! use vmcu_ir::affine::{AffineMap, IterDomain, LinearAccess, row_major_strides};
//!
//! let (m, n, k) = (4, 2, 3);
//! let domain = IterDomain::new(vec![m, n, k]);
//! // In[m,k] — mapping vector [K, 1]
//! let read = LinearAccess::compose(
//!     &row_major_strides(&[m, k]),
//!     &AffineMap::new(vec![vec![1, 0, 0], vec![0, 0, 1]], vec![0, 0]),
//! );
//! // Out[m,n] — mapping vector [N, 1]
//! let write = LinearAccess::compose(
//!     &row_major_strides(&[m, n]),
//!     &AffineMap::new(vec![vec![1, 0, 0], vec![0, 1, 0]], vec![0, 0]),
//! );
//! assert_eq!(read.eval(&[1, 0, 2]), 5);
//! assert_eq!(write.eval(&[1, 1, 0]), 3);
//! assert_eq!(domain.count(), 24);
//! ```

pub mod affine;
pub mod builder;
pub mod expr;
pub mod stmt;
pub mod validate;

pub use affine::{AffineMap, IterDomain, LinearAccess};
pub use builder::KernelBuilder;
pub use expr::Expr;
pub use stmt::{DType, Kernel, Stmt};
