//! Statements and intrinsic calls of the kernel IR.
//!
//! One statement kind exists per vMCU intrinsic (§6.1): `RegAlloc`,
//! `RAMLoad`, `FlashLoad`, `Dot`, `RAMStore`, `RAMFree`, and `Broadcast`,
//! plus a `Requant` epilogue intrinsic (the int32→int8 requantization that
//! the paper folds into its Broadcast/PKHBT discussion) and ordinary
//! structured control flow.

use crate::expr::Expr;
use std::fmt;

/// Element type of a register array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 8-bit signed integer (tensor data).
    Int8,
    /// 32-bit signed integer (accumulators).
    Int32,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::Int8 => 1,
            DType::Int32 => 4,
        }
    }

    /// The C spelling of this type.
    pub fn c_name(self) -> &'static str {
        match self {
            DType::Int8 => "int8_t",
            DType::Int32 => "int32_t",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// A kernel IR statement.
///
/// Address operands (`addr`) are *pool segment-space byte addresses*; the
/// backends apply the circular-buffer modulo, mirroring the boundary-check
/// step of every vMCU kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `for var in 0..extent step step { body }`; `unroll` asks the C
    /// backend to fully unroll (vMCU kernels fully unroll the innermost
    /// reduction loops, TinyEngine-style code unrolls to a fixed depth).
    For {
        /// Loop variable name.
        var: String,
        /// Trip-count bound expression (exclusive).
        extent: Expr,
        /// Loop increment (must be positive).
        step: i64,
        /// Whether to fully unroll in generated code.
        unroll: bool,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `RegAlloc`: declares a register array filled with `init`.
    RegAlloc {
        /// Register-array name.
        name: String,
        /// Element count.
        len: usize,
        /// Element type.
        dtype: DType,
        /// Initial element value.
        init: i32,
    },
    /// `RAMLoad`: copies `len` bytes from circular RAM into a register
    /// array at `dst[dst_off..]`.
    RamLoad {
        /// Destination register array.
        dst: String,
        /// Destination element offset.
        dst_off: Expr,
        /// Source pool byte address (pre-modulo).
        addr: Expr,
        /// Byte count.
        len: Expr,
    },
    /// `FlashLoad`: copies `len` bytes from read-only Flash into a register
    /// array.
    FlashLoad {
        /// Destination register array.
        dst: String,
        /// Destination element offset.
        dst_off: Expr,
        /// Flash byte address.
        addr: Expr,
        /// Byte count.
        len: Expr,
    },
    /// `Dot`: fixed-size int8×int8→int32 matrix-multiply micro-kernel
    /// (`ni`×`ki` against a `ki`-vector), accumulating into `acc`.
    /// Lowered to `SXTB16`+`SMLAD` sequences on ARM.
    Dot {
        /// Accumulator register array (int32).
        acc: String,
        /// Accumulator element offset.
        acc_off: Expr,
        /// Activation register array (int8).
        a: String,
        /// Activation element offset.
        a_off: Expr,
        /// Weight register array (int8), laid out `[ki][ni]` row-major.
        b: String,
        /// Weight element offset.
        b_off: Expr,
        /// Reduction length.
        ki: usize,
        /// Number of output lanes.
        ni: usize,
    },
    /// `RAMStore`: copies `len` bytes from a register array into circular
    /// RAM.
    RamStore {
        /// Source register array.
        src: String,
        /// Source element offset.
        src_off: Expr,
        /// Destination pool byte address (pre-modulo).
        addr: Expr,
        /// Byte count.
        len: Expr,
    },
    /// `RAMFree`: marks `len` bytes at `addr` as dead (enables the
    /// overlapped segment replacement of §4).
    RamFree {
        /// Pool byte address (pre-modulo).
        addr: Expr,
        /// Byte count.
        len: Expr,
    },
    /// `Broadcast`: fills `len` elements of a register array with `value`
    /// (PKHBT on ARM).
    Broadcast {
        /// Destination register array.
        dst: String,
        /// Destination element offset.
        dst_off: Expr,
        /// Value to replicate.
        value: Expr,
        /// Element count.
        len: usize,
    },
    /// Requantizes `len` int32 accumulators into int8:
    /// `sat8(round(acc * mult >> (31 + shift)) + zp)`.
    Requant {
        /// Destination int8 register array.
        dst: String,
        /// Destination element offset.
        dst_off: Expr,
        /// Source int32 register array.
        src: String,
        /// Source element offset.
        src_off: Expr,
        /// Element count.
        len: usize,
        /// Fixed-point multiplier (Q31).
        mult: i32,
        /// Right shift (>= 0).
        shift: i32,
        /// Output zero point.
        zp: i32,
    },
    /// Binds a scalar variable to an expression value.
    Let {
        /// Variable name.
        name: String,
        /// Bound value.
        value: Expr,
    },
}

impl Stmt {
    /// Wraps statements in a sequence, flattening nested sequences one
    /// level.
    pub fn seq(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                Stmt::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        Stmt::Seq(out)
    }

    /// Counts statements of every kind (used by tests and the lowering
    /// pass to sanity-check tiling structure).
    pub fn count_nodes(&self) -> usize {
        match self {
            Stmt::Seq(v) => 1 + v.iter().map(Stmt::count_nodes).sum::<usize>(),
            Stmt::For { body, .. } => 1 + body.count_nodes(),
            _ => 1,
        }
    }

    /// Visits every statement depth-first.
    pub fn visit(&self, f: &mut dyn FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Seq(v) => v.iter().for_each(|s| s.visit(f)),
            Stmt::For { body, .. } => body.visit(f),
            _ => {}
        }
    }

    /// Maximum loop-nest depth of the statement.
    pub fn loop_depth(&self) -> usize {
        match self {
            Stmt::Seq(v) => v.iter().map(Stmt::loop_depth).max().unwrap_or(0),
            Stmt::For { body, .. } => 1 + body.loop_depth(),
            _ => 0,
        }
    }
}

/// A complete kernel: a name, parameter bindings supplied at run time
/// (tensor base addresses in pool space, sizes), and a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (C function name after lowering).
    pub name: String,
    /// Run-time integer parameters (e.g. `in_base`, `out_base`, `M`, `K`).
    pub params: Vec<String>,
    /// Kernel body.
    pub body: Stmt,
}

impl Kernel {
    /// Creates a kernel.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Stmt) -> Self {
        Self {
            name: name.into(),
            params,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_nest() -> Stmt {
        Stmt::For {
            var: "m".into(),
            extent: Expr::var("M"),
            step: 1,
            unroll: false,
            body: Box::new(Stmt::For {
                var: "k".into(),
                extent: Expr::var("K"),
                step: 16,
                unroll: true,
                body: Box::new(Stmt::RamFree {
                    addr: Expr::var("m") * Expr::var("K") + Expr::var("k"),
                    len: Expr::imm(16),
                }),
            }),
        }
    }

    #[test]
    fn seq_flattens_one_level() {
        let s = Stmt::seq([
            Stmt::Seq(vec![Stmt::Let {
                name: "a".into(),
                value: Expr::imm(1),
            }]),
            Stmt::Let {
                name: "b".into(),
                value: Expr::imm(2),
            },
        ]);
        match s {
            Stmt::Seq(v) => assert_eq!(v.len(), 2),
            _ => panic!("expected Seq"),
        }
    }

    #[test]
    fn loop_depth_and_node_count() {
        let nest = loop_nest();
        assert_eq!(nest.loop_depth(), 2);
        assert_eq!(nest.count_nodes(), 3);
    }

    #[test]
    fn visit_reaches_leaves() {
        let mut frees = 0;
        loop_nest().visit(&mut |s| {
            if matches!(s, Stmt::RamFree { .. }) {
                frees += 1;
            }
        });
        assert_eq!(frees, 1);
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::Int8.size_bytes(), 1);
        assert_eq!(DType::Int32.size_bytes(), 4);
        assert_eq!(DType::Int32.to_string(), "int32_t");
    }
}
