//! Structural validation of kernel IR.
//!
//! Lowering and interpretation both assume well-formed kernels: every
//! register array is allocated before use, every variable reference is a
//! loop variable, a `let` binding, or a declared parameter, and intrinsic
//! shapes are sane. Validation turns violations into typed errors instead
//! of backend panics.

use crate::expr::Expr;
use crate::stmt::{DType, Kernel, Stmt};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A variable was referenced without a binding in scope.
    UnboundVar {
        /// Variable name.
        name: String,
    },
    /// A register array was used before `RegAlloc`.
    UnknownReg {
        /// Register-array name.
        name: String,
    },
    /// A register array was allocated twice in the same scope chain.
    DuplicateReg {
        /// Register-array name.
        name: String,
    },
    /// A `Dot` with zero `ki` or `ni`.
    EmptyDot,
    /// A loop with non-positive step.
    BadStep {
        /// Loop variable.
        var: String,
        /// Offending step.
        step: i64,
    },
    /// A `RamStore` from a register wider than one byte per element.
    ///
    /// RAM stores narrow to bytes: both backends require the source to be
    /// an `Int8` register (the interpreter rejects at run time; the C
    /// backend would silently reinterpret raw accumulator bytes). Kernels
    /// must requantize `Int32` accumulators into an `Int8` register first.
    WideStore {
        /// Offending source register.
        name: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnboundVar { name } => write!(f, "unbound variable `{name}`"),
            ValidateError::UnknownReg { name } => {
                write!(f, "register array `{name}` used before RegAlloc")
            }
            ValidateError::DuplicateReg { name } => {
                write!(f, "register array `{name}` allocated twice")
            }
            ValidateError::EmptyDot => write!(f, "Dot intrinsic with zero ki or ni"),
            ValidateError::BadStep { var, step } => {
                write!(f, "loop `{var}` has non-positive step {step}")
            }
            ValidateError::WideStore { name } => {
                write!(
                    f,
                    "ram store from non-int8 register `{name}` would truncate"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

struct Ctx {
    vars: HashSet<String>,
    regs: HashMap<String, DType>,
}

impl Ctx {
    fn check_expr(&self, e: &Expr) -> Result<(), ValidateError> {
        let mut names = Vec::new();
        e.collect_vars(&mut names);
        for n in names {
            if !self.vars.contains(&n) {
                return Err(ValidateError::UnboundVar { name: n });
            }
        }
        Ok(())
    }

    fn check_reg(&self, name: &str) -> Result<(), ValidateError> {
        if self.regs.contains_key(name) {
            Ok(())
        } else {
            Err(ValidateError::UnknownReg {
                name: name.to_owned(),
            })
        }
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), ValidateError> {
        match s {
            Stmt::Seq(v) => v.iter().try_for_each(|s| self.check_stmt(s)),
            Stmt::For {
                var,
                extent,
                step,
                body,
                ..
            } => {
                if *step <= 0 {
                    return Err(ValidateError::BadStep {
                        var: var.clone(),
                        step: *step,
                    });
                }
                self.check_expr(extent)?;
                let fresh = self.vars.insert(var.clone());
                self.check_stmt(body)?;
                if fresh {
                    self.vars.remove(var);
                }
                Ok(())
            }
            Stmt::RegAlloc { name, dtype, .. } => {
                // Reallocating the same accumulator inside a loop body is
                // legal and common (fresh accumulators per tile); only a
                // *sibling* duplicate in the same linear sequence would be
                // suspicious, which this coarse check tolerates.
                self.regs.insert(name.clone(), *dtype);
                Ok(())
            }
            Stmt::RamLoad {
                dst,
                dst_off,
                addr,
                len,
            }
            | Stmt::FlashLoad {
                dst,
                dst_off,
                addr,
                len,
            } => {
                self.check_reg(dst)?;
                self.check_expr(dst_off)?;
                self.check_expr(addr)?;
                self.check_expr(len)
            }
            Stmt::Dot {
                acc,
                acc_off,
                a,
                a_off,
                b,
                b_off,
                ki,
                ni,
            } => {
                if *ki == 0 || *ni == 0 {
                    return Err(ValidateError::EmptyDot);
                }
                self.check_reg(acc)?;
                self.check_reg(a)?;
                self.check_reg(b)?;
                self.check_expr(acc_off)?;
                self.check_expr(a_off)?;
                self.check_expr(b_off)
            }
            Stmt::RamStore {
                src,
                src_off,
                addr,
                len,
            } => {
                self.check_reg(src)?;
                if self.regs.get(src) != Some(&DType::Int8) {
                    return Err(ValidateError::WideStore { name: src.clone() });
                }
                self.check_expr(src_off)?;
                self.check_expr(addr)?;
                self.check_expr(len)
            }
            Stmt::RamFree { addr, len } => {
                self.check_expr(addr)?;
                self.check_expr(len)
            }
            Stmt::Broadcast {
                dst,
                dst_off,
                value,
                ..
            } => {
                self.check_reg(dst)?;
                self.check_expr(dst_off)?;
                self.check_expr(value)
            }
            Stmt::Requant {
                dst,
                dst_off,
                src,
                src_off,
                ..
            } => {
                self.check_reg(dst)?;
                self.check_reg(src)?;
                self.check_expr(dst_off)?;
                self.check_expr(src_off)
            }
            Stmt::Let { name, value } => {
                self.check_expr(value)?;
                self.vars.insert(name.clone());
                Ok(())
            }
        }
    }
}

/// Validates a kernel.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found in program order.
pub fn validate(kernel: &Kernel) -> Result<(), ValidateError> {
    let mut ctx = Ctx {
        vars: kernel.params.iter().cloned().collect(),
        regs: HashMap::new(),
    };
    ctx.check_stmt(&kernel.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn accepts_well_formed_kernel() {
        let mut kb = KernelBuilder::new("ok");
        kb.param("base").param("M");
        kb.for_("m", Expr::var("M"), |kb| {
            kb.reg_alloc_i32("acc", 4, 0);
            kb.ram_load("acc", 0, Expr::var("base") + Expr::var("m"), 4);
        });
        assert_eq!(validate(&kb.finish()), Ok(()));
    }

    #[test]
    fn rejects_unbound_variable() {
        let mut kb = KernelBuilder::new("bad");
        kb.reg_alloc_i8("r", 4, 0);
        kb.ram_load("r", 0, Expr::var("nowhere"), 4);
        let err = validate(&kb.finish()).unwrap_err();
        assert_eq!(
            err,
            ValidateError::UnboundVar {
                name: "nowhere".into()
            }
        );
    }

    #[test]
    fn rejects_unallocated_register() {
        let mut kb = KernelBuilder::new("bad");
        kb.ram_store("ghost", 0, 0, 4);
        let err = validate(&kb.finish()).unwrap_err();
        assert_eq!(
            err,
            ValidateError::UnknownReg {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn rejects_store_from_wide_register() {
        let mut kb = KernelBuilder::new("bad");
        kb.reg_alloc_i32("acc", 4, 0);
        kb.ram_store("acc", 0, 0, 4);
        let err = validate(&kb.finish()).unwrap_err();
        assert_eq!(err, ValidateError::WideStore { name: "acc".into() });
    }

    #[test]
    fn rejects_empty_dot() {
        let mut kb = KernelBuilder::new("bad");
        kb.reg_alloc_i32("acc", 4, 0)
            .reg_alloc_i8("a", 16, 0)
            .reg_alloc_i8("b", 16, 0)
            .dot("acc", 0, "a", 0, "b", 0, 0, 2);
        assert_eq!(validate(&kb.finish()).unwrap_err(), ValidateError::EmptyDot);
    }

    #[test]
    fn loop_variable_scoping_ends_with_loop() {
        let mut kb = KernelBuilder::new("bad");
        kb.reg_alloc_i8("r", 4, 0);
        kb.for_("i", 4, |_| {});
        kb.ram_load("r", 0, Expr::var("i"), 4); // `i` out of scope here
        let err = validate(&kb.finish()).unwrap_err();
        assert_eq!(err, ValidateError::UnboundVar { name: "i".into() });
    }

    #[test]
    fn let_bindings_stay_visible() {
        let mut kb = KernelBuilder::new("ok");
        kb.param("base");
        kb.let_("stride", 16);
        kb.reg_alloc_i8("r", 4, 0);
        kb.ram_load("r", 0, Expr::var("base") + Expr::var("stride"), 4);
        assert_eq!(validate(&kb.finish()), Ok(()));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ValidateError::BadStep {
            var: "i".into(),
            step: -1,
        };
        assert!(e.to_string().contains("non-positive step"));
    }
}
