//! Scalar expressions of the kernel IR.
//!
//! Kernels written through the builder DSL (§6's Python interface analog)
//! compute addresses and loop bounds with these expressions; the code
//! generator prints them as C and the interpreter evaluates them.

use std::fmt;
use std::ops::{Add, Div, Mul, Rem, Sub};

/// Binary operators available in IR expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Euclidean-style integer division (rounds toward negative infinity,
    /// matching address arithmetic expectations).
    Div,
    /// Remainder with a non-negative result — the paper's circular-buffer
    /// `addr % (MemCap/Seg)` modulo.
    Rem,
    /// Minimum of the operands.
    Min,
    /// Maximum of the operands.
    Max,
}

impl BinOp {
    /// Evaluates the operator on constant operands.
    ///
    /// # Panics
    ///
    /// Panics on division or remainder by zero.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a.div_euclid(b),
            BinOp::Rem => a.rem_euclid(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// C operator spelling (`Min`/`Max` lower to helper macros).
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Min => "VMCU_MIN",
            BinOp::Max => "VMCU_MAX",
        }
    }
}

/// A scalar integer expression.
///
/// # Examples
///
/// ```
/// use vmcu_ir::expr::Expr;
/// let e = (Expr::var("m") * 16 + Expr::var("k")) % 4096;
/// assert_eq!(e.to_string(), "(((m * 16) + k) % 4096)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer immediate.
    Imm(i64),
    /// Reference to a loop variable or scalar binding.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Creates a variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Creates an immediate.
    pub fn imm(v: i64) -> Self {
        Expr::Imm(v)
    }

    /// `min(self, other)`.
    pub fn min(self, other: impl Into<Expr>) -> Self {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(other.into()))
    }

    /// `max(self, other)`.
    pub fn max(self, other: impl Into<Expr>) -> Self {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(other.into()))
    }

    /// Collects every variable name referenced by the expression into
    /// `out` (duplicates included; callers sort/dedup as needed).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Imm(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Evaluates the expression with a variable-resolution callback.
    ///
    /// # Errors
    ///
    /// Returns the offending variable name if `lookup` cannot resolve it.
    pub fn eval_with(&self, lookup: &dyn Fn(&str) -> Option<i64>) -> Result<i64, UnboundVarError> {
        match self {
            Expr::Imm(v) => Ok(*v),
            Expr::Var(name) => lookup(name).ok_or_else(|| UnboundVarError { name: name.clone() }),
            Expr::Bin(op, a, b) => Ok(op.eval(a.eval_with(lookup)?, b.eval_with(lookup)?)),
        }
    }

    /// Constant-folds the expression if it references no variables.
    pub fn as_const(&self) -> Option<i64> {
        self.eval_with(&|_| None).ok()
    }
}

/// Error returned by [`Expr::eval_with`] when a variable has no binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundVarError {
    /// The unresolved variable name.
    pub name: String,
}

impl fmt::Display for UnboundVarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unbound IR variable `{}`", self.name)
    }
}

impl std::error::Error for UnboundVarError {}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Imm(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::Imm(i64::from(v))
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Self {
        Expr::Imm(v as i64)
    }
}

impl From<&Expr> for Expr {
    fn from(v: &Expr) -> Self {
        v.clone()
    }
}

macro_rules! impl_bin {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<Expr>> $trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}

impl_bin!(Add, add, BinOp::Add);
impl_bin!(Sub, sub, BinOp::Sub);
impl_bin!(Mul, mul, BinOp::Mul);
impl_bin!(Div, div, BinOp::Div);
impl_bin!(Rem, rem, BinOp::Rem);

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Imm(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => match op {
                BinOp::Min | BinOp::Max => write!(f, "{}({a}, {b})", op.c_symbol()),
                _ => write!(f, "({a} {} {b})", op.c_symbol()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, i64)]) -> impl Fn(&str) -> Option<i64> + 'a {
        move |n| pairs.iter().find(|(k, _)| *k == n).map(|(_, v)| *v)
    }

    #[test]
    fn arithmetic_evaluates() {
        let e = Expr::var("m") * 16 + Expr::var("k") - 3;
        assert_eq!(e.eval_with(&env(&[("m", 2), ("k", 5)])).unwrap(), 34);
    }

    #[test]
    fn rem_is_non_negative() {
        let e = (Expr::var("a") - 10) % 8;
        assert_eq!(e.eval_with(&env(&[("a", 3)])).unwrap(), 1);
        assert_eq!(BinOp::Rem.eval(-1, 5), 4);
        assert_eq!(BinOp::Div.eval(-1, 5), -1);
    }

    #[test]
    fn min_max_evaluate() {
        assert_eq!(Expr::imm(3).min(7).as_const(), Some(3));
        assert_eq!(Expr::imm(3).max(7).as_const(), Some(7));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = Expr::var("missing") + 1;
        let err = e.eval_with(&env(&[])).unwrap_err();
        assert_eq!(err.name, "missing");
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn const_folding() {
        assert_eq!((Expr::imm(6) * 7).as_const(), Some(42));
        assert_eq!((Expr::var("x") * 7).as_const(), None);
    }

    #[test]
    fn collect_vars_finds_all() {
        let e = (Expr::var("a") + Expr::var("b")) * Expr::var("a");
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        vars.sort();
        assert_eq!(vars, vec!["a", "a", "b"]);
    }

    #[test]
    fn display_is_parenthesized_c() {
        let e = (Expr::var("m") + 1) % 4;
        assert_eq!(e.to_string(), "((m + 1) % 4)");
        let e = Expr::var("x").min(Expr::var("y") + 1);
        assert_eq!(e.to_string(), "VMCU_MIN(x, (y + 1))");
    }
}
