//! # vmcu-kernels — segment-aware kernels and baselines
//!
//! The §5/§6 layer of the vMCU reproduction:
//!
//! * [`intrinsics`] — the compute intrinsics (`Dot`, `Broadcast`,
//!   requantization epilogue) executing real int8 arithmetic on the
//!   simulated machine while charging modelled costs;
//! * [`fc`], [`pointwise`], [`conv2d`], [`depthwise`] — single-layer
//!   segment-aware kernels (Figures 4 and 5) running against the circular
//!   [`vmcu_pool::SegmentPool`], each paired with a dry-run trace that
//!   tells the planner the exact pointer distance the implementation
//!   needs;
//! * [`fused_ib`] — the fused inverted-bottleneck kernel (Figure 6) in
//!   both workspace schemes;
//! * [`fused_chain`] — the generalized multi-layer fused chain kernel
//!   (line-buffer rings per intermediate, one pool window end to end);
//! * [`merge`] — branch-merging kernels (elementwise residual add,
//!   channel concat) that free operand slices as they are consumed so
//!   the fused output overlaps the dying inputs;
//! * [`im2col`] — im2col + matmul lowering for conv2d/fc: receptive
//!   fields gathered into staging RAM (RAM-to-RAM copy traffic), then a
//!   branch-free GEMM through the lane-blocked `Dot` micro-kernel;
//! * [`patched`] — patch-based front-stage execution: spatial tiles of
//!   the output run through the single-layer kernels slice by slice,
//!   with receptive-field halos recomputed (and charged) honestly;
//! * [`tinyengine`] — the TinyEngine-policy baseline kernels (tensor-level
//!   memory, im2col, fixed-depth unrolling, in-place depthwise);
//! * [`trace`] — the executable-schedule trace machinery and the
//!   free-based distance bound;
//! * [`params`] — shared layer parameter blocks.
//!
//! Every kernel is tested bit-exact against `vmcu_tensor::reference`, and
//! every planner distance is validated empirically: kernels run clean at
//! the planned offset and clobber deterministically one byte short of it.

pub mod conv2d;
pub mod depthwise;
pub mod fc;
pub mod fused_chain;
pub mod fused_ib;
pub mod im2col;
pub mod intrinsics;
pub mod merge;
pub mod params;
pub mod patched;
pub mod pointwise;
pub mod tinyengine;
pub mod trace;

pub use fused_chain::{ChainOp, FusedChain};
pub use fused_ib::{IbFlash, IbScheme};
pub use im2col::{run_conv2d_im2col, run_fc_im2col};
pub use merge::{run_add, run_concat};
pub use params::{
    AddParams, ConcatParams, Conv2dParams, DepthwiseParams, FcParams, IbParams, PointwiseParams,
};
pub use patched::{PatchGrid, PatchedFront};
