//! Segment-aware depthwise convolution.
//!
//! Depthwise layers have no cross-channel reuse, which is why tensor-level
//! managers (TinyEngine) can already run them in place. The segment kernel
//! reproduces that behaviour naturally: its executable distance is small
//! (about one window row), and the pool lets outputs trail inputs through
//! the same bytes — the paper notes vMCU matches TinyEngine's in-place
//! optimization for these layers (§7.2).

use crate::intrinsics::{broadcast, requant_row};
use crate::params::DepthwiseParams;
use crate::trace::{exec_distance, ExecEvent};
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;

fn free_upto(p: &DepthwiseParams, row: usize) -> usize {
    if row + 1 == p.out_h() {
        p.h
    } else {
        p.h.min(((row + 1) * p.stride).saturating_sub(p.pad))
    }
}

/// Dry-run of the kernel's store/free schedule (byte addresses).
pub fn depthwise_exec_trace(p: &DepthwiseParams) -> Vec<ExecEvent> {
    let q_out = p.out_w();
    let row_bytes = p.w * p.c;
    let mut ev = Vec::new();
    let mut next_free = 0usize;
    for pi in 0..p.out_h() {
        for qi in 0..q_out {
            ev.push(ExecEvent::Store {
                addr: ((pi * q_out + qi) * p.c) as i64,
                len: p.c,
            });
        }
        let upto = free_upto(p, pi);
        if upto > next_free {
            ev.push(ExecEvent::Free {
                addr: (next_free * row_bytes) as i64,
                len: (upto - next_free) * row_bytes,
            });
            next_free = upto;
        }
    }
    ev
}

/// Minimal executable `bIn − bOut` (bytes).
pub fn depthwise_exec_distance(p: &DepthwiseParams) -> i64 {
    exec_distance(p.in_bytes(), depthwise_exec_trace(p))
}

/// Peak pool bytes when running with [`depthwise_exec_distance`].
pub fn depthwise_exec_footprint(p: &DepthwiseParams) -> usize {
    let d = depthwise_exec_distance(p).max(0) as usize;
    (p.in_bytes() + d).max(p.out_bytes())
}

/// Runs the depthwise kernel. Input `[H,W,C]` at pool address `b_in`,
/// output `[P,Q,C]` at `b_out`, weights `[R,S,C]` in Flash at `w_base`.
///
/// # Errors
///
/// Propagates pool violations and memory errors.
///
/// # Panics
///
/// Panics if `bias` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn run_depthwise(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &DepthwiseParams,
    b_in: i64,
    b_out: i64,
    w_base: usize,
    bias: Option<&[i32]>,
) -> Result<(), PoolError> {
    if let Some(b) = bias {
        assert_eq!(b.len(), p.c, "bias length mismatch");
    }
    let (p_out, q_out) = (p.out_h(), p.out_w());
    let mut a_reg = vec![0u8; p.c];
    let mut w_reg = vec![0u8; p.c];
    let mut acc = vec![0i32; p.c];
    let mut out_reg = vec![0u8; p.c];
    let mut next_free = 0usize;
    for pi in 0..p_out {
        for qi in 0..q_out {
            broadcast(m, &mut acc, 0);
            if let Some(b) = bias {
                acc.copy_from_slice(b);
            }
            for ri in 0..p.r {
                let y = (pi * p.stride + ri) as isize - p.pad as isize;
                if y < 0 || y >= p.h as isize {
                    continue;
                }
                for si in 0..p.s {
                    let x = (qi * p.stride + si) as isize - p.pad as isize;
                    if x < 0 || x >= p.w as isize {
                        continue;
                    }
                    let in_addr = ((y as usize * p.w + x as usize) * p.c) as i64;
                    pool.load(m, b_in + in_addr, &mut a_reg)?;
                    m.flash_load(w_base + (ri * p.s + si) * p.c, &mut w_reg)?;
                    for c in 0..p.c {
                        acc[c] += i32::from(a_reg[c] as i8) * i32::from(w_reg[c] as i8);
                    }
                    m.charge_macs(p.c as u64, true);
                }
            }
            requant_row(m, &acc, p.rq, p.clamp, &mut out_reg);
            pool.store(m, &out_reg, b_out + ((pi * q_out + qi) * p.c) as i64)?;
            m.charge_branches(1);
        }
        let upto = free_upto(p, pi);
        if upto > next_free {
            pool.free(
                b_in + (next_free * p.w * p.c) as i64,
                (upto - next_free) * p.w * p.c,
            )?;
            next_free = upto;
        }
        m.charge_branches(1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;
    use vmcu_tensor::{random, reference, Requant, Tensor};

    fn run_case(p: &DepthwiseParams, extra: i64) -> Result<Tensor<i8>, PoolError> {
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[p.h, p.w, p.c], 41);
        let weight = random::tensor_i8(&[p.r, p.s, p.c], 42);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let d = depthwise_exec_distance(p) + extra;
        let used = d.max(0) as usize;
        let window = (p.in_bytes() + used).max(p.out_bytes());
        let mut pool = SegmentPool::new(&m, 0, window, p.c).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_depthwise(&mut m, &mut pool, p, 0, -d, w_base, None)?;
        let out = pool.host_read(&m, -d, p.out_bytes())?;
        Ok(Tensor::from_bytes(&[p.out_h(), p.out_w(), p.c], &out))
    }

    fn expected(p: &DepthwiseParams) -> Tensor<i8> {
        let input = random::tensor_i8(&[p.h, p.w, p.c], 41);
        let weight = random::tensor_i8(&[p.r, p.s, p.c], 42);
        reference::depthwise(&input, &weight, None, p.stride, p.pad, p.rq, p.clamp)
    }

    #[test]
    fn matches_reference_same_padding() {
        let p = DepthwiseParams::new(6, 6, 8, 3, 3, 1, 1, Requant::from_scale(1.0 / 16.0, 0));
        assert_eq!(run_case(&p, 0).unwrap(), expected(&p));
    }

    #[test]
    fn matches_reference_stride_two() {
        let p = DepthwiseParams::new(8, 8, 4, 3, 3, 2, 1, Requant::from_scale(1.0 / 8.0, -2));
        assert_eq!(run_case(&p, 0).unwrap(), expected(&p));
    }

    #[test]
    fn matches_reference_large_window() {
        let p = DepthwiseParams::new(9, 9, 3, 7, 7, 1, 3, Requant::from_scale(1.0 / 32.0, 1));
        assert_eq!(run_case(&p, 0).unwrap(), expected(&p));
    }

    #[test]
    fn footprint_is_near_in_place() {
        // Depthwise stride-1: output trails input by ~ one window row, so
        // the footprint is input + O(rows), matching TinyEngine's in-place.
        let p = DepthwiseParams::new(16, 16, 8, 3, 3, 1, 1, Requant::identity());
        let fp = depthwise_exec_footprint(&p);
        let row = p.w * p.c;
        assert!(fp <= p.in_bytes() + 3 * row, "fp={fp}");
        assert!(fp < p.in_bytes() + p.out_bytes());
    }

    #[test]
    fn exec_distance_is_tight_empirically() {
        let p = DepthwiseParams::new(6, 6, 4, 3, 3, 1, 1, Requant::from_scale(0.1, 0));
        assert!(run_case(&p, 0).is_ok());
        assert!(matches!(
            run_case(&p, -1).unwrap_err(),
            PoolError::Clobber { .. }
        ));
    }
}
