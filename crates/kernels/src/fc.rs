//! Segment-aware fully-connected kernel — Figure 4 of the paper.
//!
//! Two-level tiling: the outer level moves whole segments between the
//! circular pool and registers (`RAMLoad`/`RAMStore` with modulo boundary
//! checks); the inner level feeds the `Dot` micro-kernel. After each input
//! row is fully consumed it is freed (`RAMFree`), letting subsequent
//! output segments reuse its pool slots.
//!
//! [`fc_exec_trace`] reproduces the kernel's exact store/free order for
//! the planner; [`fc_exec_distance`] is the offset the kernel needs.

use crate::intrinsics::{broadcast, dot_tile_u8, requant_row};
use crate::params::FcParams;
use crate::trace::{exec_distance, ExecEvent};
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;

/// Dry-run of the kernel's store/free schedule (byte addresses relative to
/// the tensor bases).
pub fn fc_exec_trace(p: &FcParams) -> Vec<ExecEvent> {
    let mut ev = Vec::new();
    for mi in 0..p.m {
        let mut n0 = 0;
        while n0 < p.n {
            let nw = p.seg.min(p.n - n0);
            ev.push(ExecEvent::Store {
                addr: (mi * p.n + n0) as i64,
                len: nw,
            });
            n0 += nw;
        }
        ev.push(ExecEvent::Free {
            addr: (mi * p.k) as i64,
            len: p.k,
        });
    }
    ev
}

/// Minimal executable `bIn − bOut` for this kernel (bytes).
pub fn fc_exec_distance(p: &FcParams) -> i64 {
    exec_distance(p.in_bytes(), fc_exec_trace(p))
}

/// Peak pool bytes when running with [`fc_exec_distance`].
pub fn fc_exec_footprint(p: &FcParams) -> usize {
    let d = fc_exec_distance(p).max(0) as usize;
    (p.in_bytes() + d).max(p.out_bytes())
}

/// Runs the fully-connected kernel.
///
/// * input int8 tensor at pool logical address `b_in` (row-major `[M,K]`),
/// * output written at pool logical address `b_out` (row-major `[M,N]`),
/// * weights in Flash at `w_base` (row-major `[K,N]`),
/// * optional per-output bias.
///
/// # Errors
///
/// Propagates pool violations (clobber/dead-read when the offset is too
/// tight) and memory errors.
///
/// # Panics
///
/// Panics if `bias` has the wrong length.
pub fn run_fc(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &FcParams,
    b_in: i64,
    b_out: i64,
    w_base: usize,
    bias: Option<&[i32]>,
) -> Result<(), PoolError> {
    if let Some(b) = bias {
        assert_eq!(b.len(), p.n, "bias length mismatch");
    }
    let seg = p.seg;
    let mut a_reg = vec![0u8; seg];
    let mut w_tile = vec![0u8; seg * seg];
    let mut acc = vec![0i32; seg];
    let mut out_reg = vec![0u8; seg];
    for mi in 0..p.m {
        let mut n0 = 0;
        while n0 < p.n {
            let nw = seg.min(p.n - n0);
            // Accumulator initialisation (RegAlloc + bias broadcast).
            broadcast(m, &mut acc[..nw], 0);
            if let Some(b) = bias {
                for (a, &bv) in acc[..nw].iter_mut().zip(&b[n0..n0 + nw]) {
                    *a = bv;
                }
            }
            let mut k0 = 0;
            while k0 < p.k {
                let kw = seg.min(p.k - k0);
                // RAMLoad of the input segment (modulo-checked).
                pool.load(m, b_in + (mi * p.k + k0) as i64, &mut a_reg[..kw])?;
                // FlashLoad of the weight tile rows W[k0..k0+kw, n0..n0+nw];
                // a tile spanning full rows streams as one long burst.
                if nw == p.n {
                    m.flash_load(w_base + k0 * p.n, &mut w_tile[..kw * nw])?;
                } else {
                    for kk in 0..kw {
                        let row = w_base + (k0 + kk) * p.n + n0;
                        m.flash_load(row, &mut w_tile[kk * nw..kk * nw + nw])?;
                    }
                }
                // Inner level: fully unrolled Dot micro-kernels, reading
                // int8 straight out of the staging registers (no per-tile
                // sign-conversion allocations on the host).
                dot_tile_u8(
                    m,
                    &a_reg[..kw],
                    &w_tile[..kw * nw],
                    nw,
                    &mut acc[..nw],
                    true,
                );
                m.charge_branches(1);
                k0 += kw;
            }
            requant_row(m, &acc[..nw], p.rq, p.clamp, &mut out_reg[..nw]);
            // RAMStore of the output segment.
            pool.store(m, &out_reg[..nw], b_out + (mi * p.n + n0) as i64)?;
            m.charge_branches(1);
            n0 += nw;
        }
        // RAMFree of the fully consumed input row.
        pool.free(b_in + (mi * p.k) as i64, p.k)?;
        m.charge_branches(1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;
    use vmcu_tensor::{random, reference, Requant, Tensor, NO_CLAMP};

    /// Runs the kernel end-to-end in a minimal pool and returns the output
    /// tensor plus the machine for counter inspection.
    fn run_case(p: &FcParams, extra_bytes: i64) -> Result<(Tensor<i8>, Machine), PoolError> {
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[p.m, p.k], 11);
        let weight = random::tensor_i8(&[p.k, p.n], 22);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let d = fc_exec_distance(p) + extra_bytes;
        let used = d.max(0) as usize;
        let window = (p.in_bytes() + used).max(p.out_bytes());
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        let b_in: i64 = 0;
        let b_out = b_in - d;
        pool.host_fill_live(&mut m, b_in, &input.as_bytes())
            .unwrap();
        run_fc(&mut m, &mut pool, p, b_in, b_out, w_base, None)?;
        let out = pool.host_read(&m, b_out, p.out_bytes())?;
        Ok((Tensor::from_bytes(&[p.m, p.n], &out), m))
    }

    fn reference_out(p: &FcParams, seed_in: u64, seed_w: u64) -> Tensor<i8> {
        let input = random::tensor_i8(&[p.m, p.k], seed_in);
        let weight = random::tensor_i8(&[p.k, p.n], seed_w);
        reference::dense(&input, &weight, None, p.rq, p.clamp)
    }

    #[test]
    fn matches_reference_square() {
        let p = FcParams::new(6, 8, 8, Requant::from_scale(1.0 / 32.0, 0));
        let (out, _) = run_case(&p, 0).unwrap();
        assert_eq!(out, reference_out(&p, 11, 22));
    }

    #[test]
    fn matches_reference_wide_output() {
        // N > K: the output outgrows the input.
        let p = FcParams::new(5, 4, 10, Requant::from_scale(1.0 / 16.0, 3));
        let (out, _) = run_case(&p, 0).unwrap();
        assert_eq!(out, reference_out(&p, 11, 22));
    }

    #[test]
    fn matches_reference_tall_reduction() {
        // K > N with ragged segment tiling (seg = 5 does not divide 12).
        let mut p = FcParams::new(3, 12, 5, Requant::from_scale(1.0 / 64.0, -2));
        p.clamp = (0, 127); // fused ReLU
        let (out, _) = run_case(&p, 0).unwrap();
        assert_eq!(out, reference_out(&p, 11, 22));
    }

    #[test]
    fn bias_is_applied() {
        let p = FcParams::new(2, 4, 3, Requant::identity());
        let mut m = Machine::new(Device::stm32_f411re());
        let input = Tensor::from_vec(&[2, 4], vec![1i8; 8]);
        let weight = Tensor::from_vec(&[4, 3], vec![0i8; 12]);
        let bias = [5i32, -6, 7];
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let d = fc_exec_distance(&p).max(0) as usize;
        let mut pool = SegmentPool::new(&m, 0, p.in_bytes() + d + p.out_bytes(), p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_fc(&mut m, &mut pool, &p, 0, -(d as i64), w_base, Some(&bias)).unwrap();
        let out = pool.host_read(&m, -(d as i64), 6).unwrap();
        let out = Tensor::from_bytes(&[2, 3], &out);
        let expected = reference::dense(&input, &weight, Some(&bias), p.rq, p.clamp);
        assert_eq!(out, expected);
    }

    #[test]
    fn exec_distance_is_tight_empirically() {
        // At the planner's offset the kernel runs clean; one byte tighter
        // and the checked pool reports a clobber.
        let p = FcParams::new(4, 6, 6, Requant::from_scale(1.0 / 32.0, 0));
        assert!(run_case(&p, 0).is_ok());
        let err = run_case(&p, -1).unwrap_err();
        assert!(
            matches!(err, PoolError::Clobber { .. }),
            "expected clobber, got {err:?}"
        );
    }

    #[test]
    fn overlap_saves_memory_vs_disjoint() {
        let p = FcParams::new(16, 32, 16, Requant::from_scale(1.0 / 64.0, 0));
        let fp = fc_exec_footprint(&p);
        assert!(fp < p.in_bytes() + p.out_bytes());
        assert!(fp >= p.in_bytes().max(p.out_bytes()));
    }

    #[test]
    fn counters_account_macs_exactly() {
        let p = FcParams::new(4, 8, 8, Requant::from_scale(1.0 / 32.0, 0));
        let (_, m) = run_case(&p, 0).unwrap();
        assert_eq!(m.counters.macs, p.macs());
        assert!(m.counters.modulo_ops > 0, "boundary checks must be charged");
        // Weights are re-read from Flash once per input row.
        assert_eq!(m.counters.flash_read_bytes, (p.m * p.weight_bytes()) as u64);
    }

    #[test]
    fn trace_matches_paper_example_plus_row_slack() {
        // Figure 1(c): M=2, K=3, N=2; the affine bound is 1 empty segment,
        // the executable (row-granular-free) kernel needs N segments.
        let p = FcParams {
            m: 2,
            k: 3,
            n: 2,
            seg: 2,
            rq: Requant::identity(),
            clamp: NO_CLAMP,
        };
        let d = fc_exec_distance(&p);
        assert_eq!(d, 2);
        assert_eq!(fc_exec_footprint(&p), 8); // one above the ideal 7
    }
}
