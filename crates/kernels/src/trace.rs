//! Executable-schedule traces and the *free-based* offset bound.
//!
//! The solver's `D*` (from §4's read-based constraint) assumes a store may
//! reuse a byte the moment its last read retires. Real kernels free at a
//! coarser granularity (Figure 4 frees a whole input row after the output
//! row is stored), so the offset an *executable* kernel needs is governed
//! by frees, not reads:
//!
//! ```text
//! D_exec = max over stores  ( store_addr − first_unfreed_input_byte + 1 )
//! ```
//!
//! Each kernel exposes a dry-run trace generator emitting exactly the
//! store/free order of its implementation; planners use [`exec_distance`]
//! on that trace to place the output pointer, and the checked pool
//! verifies the result empirically (clean at `D_exec`, clobber at
//! `D_exec − 1`).

/// One event of an executable kernel schedule, in address units of bytes
/// relative to the tensor bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecEvent {
    /// Store of `len` output bytes starting at `addr`.
    Store {
        /// First output byte.
        addr: i64,
        /// Byte count.
        len: usize,
    },
    /// Free of `len` input bytes starting at `addr`.
    Free {
        /// First input byte.
        addr: i64,
        /// Byte count.
        len: usize,
    },
}

/// Computes the minimal executable distance `bIn − bOut` for a trace over
/// an input of `in_size` bytes.
///
/// Returns the smallest `D` such that every store lands strictly below the
/// unfreed input frontier in pool space. Stores may precede any free
/// (yielding a positive `D`, i.e. empty segments ahead of the input, as in
/// Figure 1(c)).
///
/// # Panics
///
/// Panics if a free is out of range or duplicated — traces come from our
/// own kernels, so this indicates a kernel bug.
pub fn exec_distance(in_size: usize, events: impl IntoIterator<Item = ExecEvent>) -> i64 {
    let mut freed = vec![false; in_size];
    let mut frontier: usize = 0; // first unfreed input byte
    let mut d = i64::MIN;
    for ev in events {
        match ev {
            ExecEvent::Free { addr, len } => {
                assert!(addr >= 0, "free below input base");
                let start = addr as usize;
                assert!(start + len <= in_size, "free past input end");
                for (b, f) in freed.iter_mut().enumerate().skip(start).take(len) {
                    assert!(!*f, "double free at input byte {b}");
                    *f = true;
                }
                while frontier < in_size && freed[frontier] {
                    frontier += 1;
                }
            }
            ExecEvent::Store { addr, len } => {
                if len == 0 {
                    continue;
                }
                let last = addr + len as i64 - 1;
                d = d.max(last - frontier as i64 + 1);
            }
        }
    }
    if d == i64::MIN {
        // No stores: any placement works.
        -(in_size as i64)
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ExecEvent::{Free, Store};

    #[test]
    fn store_before_any_free_needs_headroom() {
        // Store 2 bytes at [0,2) while the whole 4-byte input is live:
        // D = 1 - 0 + 1 = 2 empty bytes ahead.
        let d = exec_distance(4, [Store { addr: 0, len: 2 }]);
        assert_eq!(d, 2);
    }

    #[test]
    fn eager_frees_allow_in_place() {
        // Free input byte x, then store output byte x: D = x - (x+1) + 1 = 0.
        let events = (0..8).flat_map(|x| [Free { addr: x, len: 1 }, Store { addr: x, len: 1 }]);
        assert_eq!(exec_distance(8, events), 0);
    }

    #[test]
    fn row_granular_frees_add_row_slack() {
        // Figure-4 style: store output row (4 bytes), then free input row
        // (4 bytes), twice. First store: frontier 0, last byte 3 -> D=4.
        let events = [
            Store { addr: 0, len: 4 },
            Free { addr: 0, len: 4 },
            Store { addr: 4, len: 4 },
            Free { addr: 4, len: 4 },
        ];
        assert_eq!(exec_distance(8, events), 4);
    }

    #[test]
    fn free_first_order_goes_negative() {
        let events = [
            Free { addr: 0, len: 4 },
            Store { addr: 0, len: 2 },
            Free { addr: 4, len: 4 },
            Store { addr: 2, len: 2 },
        ];
        // First store: frontier 4, last byte 1 -> D = -2.
        assert_eq!(exec_distance(8, events), -2);
    }

    #[test]
    fn no_stores_is_unconstrained() {
        assert_eq!(exec_distance(16, [Free { addr: 0, len: 16 }]), -16);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_a_kernel_bug() {
        let _ = exec_distance(4, [Free { addr: 0, len: 2 }, Free { addr: 1, len: 2 }]);
    }

    #[test]
    fn frontier_skips_out_of_order_frees() {
        let events = [
            Free { addr: 2, len: 2 }, // hole: bytes 0..2 still live
            Store { addr: 0, len: 1 },
            Free { addr: 0, len: 2 },
            Store { addr: 1, len: 1 },
        ];
        // First store: frontier still 0 -> D = 1. Second store: frontier
        // 4 -> D = 1 - 4 + 1 = -2. Max = 1.
        assert_eq!(exec_distance(4, events), 1);
    }
}
