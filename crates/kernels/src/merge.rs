//! Segment-aware branch-merging kernels: elementwise residual add and
//! channel concatenation.
//!
//! Both kernels consume two operands staged consecutively in the pool
//! (`A` at `b_in`, `B` at `b_in + a_bytes`) and free each operand slice
//! the moment it is consumed, so the output can overlap the dying
//! inputs. Add writes each output segment straight into the slot its
//! `A` segment just vacated (distance 0 — footprint `2·T` instead of
//! the disjoint `3·T`); concat frees one pixel of each operand before
//! storing the fused pixel, needing only `Cb` bytes of slack per pixel.
//!
//! [`add_exec_trace`]/[`concat_exec_trace`] reproduce the exact
//! store/free order for the planner; the distances are validated
//! empirically (clean at the planned offset, clobber one byte short).

use crate::params::{AddParams, ConcatParams};
use crate::trace::{exec_distance, ExecEvent};
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;

/// Saturating int8 add of two staged byte slices.
fn sat_add_bytes(m: &mut Machine, a: &[u8], b: &[u8], out: &mut [u8]) {
    for ((&x, &y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        let sum = i64::from(x as i8) + i64::from(y as i8);
        *o = sum.clamp(i64::from(i8::MIN), i64::from(i8::MAX)) as i8 as u8;
    }
    // One ALU op per lane-less element; adds carry no MACs.
    m.charge_cycles(a.len() as u64);
}

/// Dry-run of the add kernel's store/free schedule.
pub fn add_exec_trace(p: &AddParams) -> Vec<ExecEvent> {
    let t = p.tensor_bytes();
    let mut ev = Vec::new();
    let mut off = 0;
    while off < t {
        let len = p.seg.min(t - off);
        // Both operand segments die before the output segment lands in
        // the slot the A segment vacated.
        ev.push(ExecEvent::Free {
            addr: off as i64,
            len,
        });
        ev.push(ExecEvent::Free {
            addr: (t + off) as i64,
            len,
        });
        ev.push(ExecEvent::Store {
            addr: off as i64,
            len,
        });
        off += len;
    }
    ev
}

/// Minimal executable `bIn − bOut` for the add kernel (bytes).
pub fn add_exec_distance(p: &AddParams) -> i64 {
    exec_distance(p.in_bytes(), add_exec_trace(p))
}

/// Peak pool bytes when running with [`add_exec_distance`].
pub fn add_exec_footprint(p: &AddParams) -> usize {
    let d = add_exec_distance(p).max(0) as usize;
    (p.in_bytes() + d).max(p.out_bytes())
}

/// Runs the elementwise residual add.
///
/// * operand `A` at pool logical address `b_in`,
/// * operand `B` at `b_in + tensor_bytes`,
/// * output written at `b_out` (pass `b_in − add_exec_distance(p)` for
///   the overlapped layout, or any disjoint address).
///
/// # Errors
///
/// Propagates pool violations (clobber/dead-read when the offset is too
/// tight) and memory errors.
pub fn run_add(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &AddParams,
    b_in: i64,
    b_out: i64,
) -> Result<(), PoolError> {
    let t = p.tensor_bytes();
    let mut a_reg = vec![0u8; p.seg];
    let mut b_reg = vec![0u8; p.seg];
    let mut out_reg = vec![0u8; p.seg];
    let mut off = 0;
    while off < t {
        let len = p.seg.min(t - off);
        pool.load(m, b_in + off as i64, &mut a_reg[..len])?;
        pool.load(m, b_in + (t + off) as i64, &mut b_reg[..len])?;
        sat_add_bytes(m, &a_reg[..len], &b_reg[..len], &mut out_reg[..len]);
        pool.free(b_in + off as i64, len)?;
        pool.free(b_in + (t + off) as i64, len)?;
        pool.store(m, &out_reg[..len], b_out + off as i64)?;
        m.charge_branches(1);
        off += len;
    }
    Ok(())
}

/// Dry-run of the concat kernel's store/free schedule.
pub fn concat_exec_trace(p: &ConcatParams) -> Vec<ExecEvent> {
    let a = p.a_bytes();
    let co = p.c_a + p.c_b;
    let mut ev = Vec::new();
    for px in 0..p.pixels() {
        ev.push(ExecEvent::Free {
            addr: (px * p.c_a) as i64,
            len: p.c_a,
        });
        ev.push(ExecEvent::Free {
            addr: (a + px * p.c_b) as i64,
            len: p.c_b,
        });
        ev.push(ExecEvent::Store {
            addr: (px * co) as i64,
            len: co,
        });
    }
    ev
}

/// Minimal executable `bIn − bOut` for the concat kernel (bytes).
pub fn concat_exec_distance(p: &ConcatParams) -> i64 {
    exec_distance(p.in_bytes(), concat_exec_trace(p))
}

/// Peak pool bytes when running with [`concat_exec_distance`].
pub fn concat_exec_footprint(p: &ConcatParams) -> usize {
    let d = concat_exec_distance(p).max(0) as usize;
    (p.in_bytes() + d).max(p.out_bytes())
}

/// Runs the channel concatenation.
///
/// * operand `A` (`[H,W,Ca]`) at pool logical address `b_in`,
/// * operand `B` (`[H,W,Cb]`) at `b_in + a_bytes`,
/// * output (`[H,W,Ca+Cb]`) written at `b_out`.
///
/// # Errors
///
/// Propagates pool violations and memory errors.
pub fn run_concat(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &ConcatParams,
    b_in: i64,
    b_out: i64,
) -> Result<(), PoolError> {
    let a = p.a_bytes() as i64;
    let co = p.c_a + p.c_b;
    let mut px_reg = vec![0u8; co];
    for px in 0..p.pixels() {
        pool.load(m, b_in + (px * p.c_a) as i64, &mut px_reg[..p.c_a])?;
        pool.load(m, b_in + a + (px * p.c_b) as i64, &mut px_reg[p.c_a..])?;
        pool.free(b_in + (px * p.c_a) as i64, p.c_a)?;
        pool.free(b_in + a + (px * p.c_b) as i64, p.c_b)?;
        pool.store(m, &px_reg, b_out + (px * co) as i64)?;
        m.charge_cycles(co as u64);
        m.charge_branches(1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;
    use vmcu_tensor::{random, reference, Tensor};

    fn run_add_case(p: &AddParams, extra: i64) -> Result<Tensor<i8>, PoolError> {
        let mut m = Machine::new(Device::stm32_f411re());
        let a = random::tensor_i8(&[p.h, p.w, p.c], 31);
        let b = random::tensor_i8(&[p.h, p.w, p.c], 32);
        let d = add_exec_distance(p) + extra;
        let window = (p.in_bytes() as i64 + d.max(0)).max(p.out_bytes() as i64) as usize;
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &a.as_bytes()).unwrap();
        pool.host_fill_live(&mut m, p.tensor_bytes() as i64, &b.as_bytes())
            .unwrap();
        run_add(&mut m, &mut pool, p, 0, -d)?;
        let out = pool.host_read(&m, -d, p.out_bytes())?;
        Ok(Tensor::from_bytes(&[p.h, p.w, p.c], &out))
    }

    fn run_concat_case(p: &ConcatParams, extra: i64) -> Result<Tensor<i8>, PoolError> {
        let mut m = Machine::new(Device::stm32_f411re());
        let a = random::tensor_i8(&[p.h, p.w, p.c_a], 41);
        let b = random::tensor_i8(&[p.h, p.w, p.c_b], 42);
        let d = concat_exec_distance(p) + extra;
        let window = (p.in_bytes() as i64 + d.max(0)).max(p.out_bytes() as i64) as usize;
        let mut pool = SegmentPool::new(&m, 0, window, p.seg()).unwrap();
        pool.host_fill_live(&mut m, 0, &a.as_bytes()).unwrap();
        pool.host_fill_live(&mut m, p.a_bytes() as i64, &b.as_bytes())
            .unwrap();
        run_concat(&mut m, &mut pool, p, 0, -d)?;
        let out = pool.host_read(&m, -d, p.out_bytes())?;
        Ok(Tensor::from_bytes(&[p.h, p.w, p.c_a + p.c_b], &out))
    }

    #[test]
    fn add_matches_reference() {
        let p = AddParams::new(6, 5, 8);
        let out = run_add_case(&p, 0).unwrap();
        let a = random::tensor_i8(&[6, 5, 8], 31);
        let b = random::tensor_i8(&[6, 5, 8], 32);
        assert_eq!(out, reference::add(&a, &b));
    }

    #[test]
    fn add_distance_is_zero_and_tight() {
        // In-slot reuse: no slack at all, so the footprint is exactly the
        // two operands (vs 3·T for a disjoint output).
        let p = AddParams::new(6, 5, 8);
        assert_eq!(add_exec_distance(&p), 0);
        assert_eq!(add_exec_footprint(&p), 2 * p.tensor_bytes());
        assert!(run_add_case(&p, 0).is_ok());
        let err = run_add_case(&p, -1).unwrap_err();
        assert!(
            matches!(err, PoolError::Clobber { .. }),
            "expected clobber, got {err:?}"
        );
    }

    #[test]
    fn concat_matches_reference() {
        let p = ConcatParams::new(5, 4, 6, 10);
        let out = run_concat_case(&p, 0).unwrap();
        let a = random::tensor_i8(&[5, 4, 6], 41);
        let b = random::tensor_i8(&[5, 4, 10], 42);
        assert_eq!(out, reference::concat(&a, &b));
    }

    #[test]
    fn concat_distance_is_tight_empirically() {
        let p = ConcatParams::new(5, 4, 6, 10);
        assert!(run_concat_case(&p, 0).is_ok());
        let err = run_concat_case(&p, -1).unwrap_err();
        assert!(
            matches!(err, PoolError::Clobber { .. }),
            "expected clobber, got {err:?}"
        );
    }

    #[test]
    fn concat_overlap_saves_memory_vs_disjoint() {
        let p = ConcatParams::new(8, 8, 12, 4);
        let fp = concat_exec_footprint(&p);
        // Per-pixel frees leave at most (pixels-1)·Cb bytes of slack.
        assert_eq!(concat_exec_distance(&p), ((p.pixels() - 1) * p.c_b) as i64);
        assert!(fp < p.in_bytes() + p.out_bytes());
        assert!(fp >= p.in_bytes().max(p.out_bytes()));
    }

    #[test]
    fn ragged_add_segments() {
        // seg does not divide the tensor size.
        let mut p = AddParams::new(3, 3, 7);
        p.seg = 4;
        let out = run_add_case(&p, 0).unwrap();
        let a = random::tensor_i8(&[3, 3, 7], 31);
        let b = random::tensor_i8(&[3, 3, 7], 32);
        assert_eq!(out, reference::add(&a, &b));
    }
}
