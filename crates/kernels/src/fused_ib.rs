//! Fused inverted-bottleneck kernel — Figure 6 of the paper (§5.2).
//!
//! The module `A →(pw expand)→ B →(dw)→ C →(pw project)→ D →(+A)→ E`
//! executes as one kernel: intermediate tensors `B`, `C`, `D` never
//! materialize; only a small workspace lives beside the circular pool, and
//! output segments of `E` replace freed input segments of `A`, pushing the
//! footprint reduction past the 50% single-layer bound.
//!
//! Two workspace schemes are implemented (see `DESIGN.md`):
//!
//! * [`IbScheme::PixelWindow`] — the paper's literal 11-segment workspace
//!   (`3×3 + 1 + 1`): the expanded window is recomputed for every output
//!   pixel (minimum memory, extra MACs);
//! * [`IbScheme::RowBuffer`] — a ring of `R` expanded rows: every `B`
//!   pixel is computed exactly once (default; matches the paper's measured
//!   latency parity with TinyEngine).
//!
//! The kernel, its dry-run trace, and the free rules all derive from one
//! shared schedule ([`ib_schedule`]), so the planner's offsets are correct
//! by construction and verified empirically by the checked pool.

use crate::intrinsics::{broadcast, dot_tile_u8, requant_row};
use crate::params::IbParams;
use crate::trace::{exec_distance, ExecEvent};
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;
use vmcu_tensor::{quant::sat8, reference, Tensor};

/// Workspace scheme of the fused kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IbScheme {
    /// `R×S` window of expanded pixels, fully recomputed per output pixel
    /// (the paper's 11-segment accounting, upper-bound compute).
    PixelWindow,
    /// `R×S` window of expanded pixels with only the entering column
    /// recomputed as the window slides — the paper's workspace with its
    /// measured latency parity (each expanded pixel is computed about
    /// `R/s2` times).
    SlidingWindow,
    /// Ring buffer of `R` expanded rows, no recomputation (lowest
    /// latency, a few extra KB of workspace).
    RowBuffer,
}

/// Flash addresses of the module's three weight tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IbFlash {
    /// Expand pointwise weights `[C_in, C_mid]`.
    pub w1: usize,
    /// Depthwise weights `[R, S, C_mid]`.
    pub wdw: usize,
    /// Project pointwise weights `[C_mid, C_out]`.
    pub w2: usize,
}

/// One step of the fused schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IbStep {
    /// Compute expanded row `b` into the ring (RowBuffer only).
    BRow(usize),
    /// Produce output pixel `(p, q)`.
    OutPixel(usize, usize),
    /// Free input rows `[from, to)`.
    FreeRows {
        /// First row to free.
        from: usize,
        /// One past the last row to free.
        to: usize,
    },
}

/// Exclusive upper bound of input rows freeable after output row `pi`.
fn free_upto(p: &IbParams, scheme: IbScheme, pi: usize) -> usize {
    let (h, h1, h2) = (p.hw, p.hw1(), p.hw2());
    if pi + 1 == h2 {
        return h;
    }
    let pw1_upto = match scheme {
        IbScheme::RowBuffer => {
            let bmax = (pi * p.s2 + p.rs - 1 - p.pad()).min(h1 - 1);
            (bmax + 1) * p.s1
        }
        IbScheme::PixelWindow | IbScheme::SlidingWindow => {
            let b_upto = ((pi + 1) * p.s2).saturating_sub(p.pad()).min(h1);
            b_upto * p.s1
        }
    };
    let upto = if p.has_residual() {
        pw1_upto.min(pi + 1)
    } else {
        pw1_upto
    };
    upto.min(h)
}

/// The shared fused schedule: the kernel executes it, the trace mirrors
/// it, and tests assert their agreement.
///
/// # Panics
///
/// Panics if the projection stride `s3` is not 1 (all Table 2 modules
/// use a unit projection stride).
pub fn ib_schedule(p: &IbParams, scheme: IbScheme) -> Vec<IbStep> {
    assert_eq!(p.s3, 1, "all Table 2 modules have a unit projection stride");
    let (h1, h2) = (p.hw1(), p.hw2());
    let w2 = h2;
    let mut steps = Vec::new();
    let mut next_b = 0usize;
    let mut next_free = 0usize;
    for pi in 0..h2 {
        if scheme == IbScheme::RowBuffer {
            let bmax = (pi * p.s2 + p.rs - 1 - p.pad()).min(h1 - 1);
            while next_b <= bmax {
                steps.push(IbStep::BRow(next_b));
                next_b += 1;
            }
        }
        for qi in 0..w2 {
            steps.push(IbStep::OutPixel(pi, qi));
        }
        let upto = free_upto(p, scheme, pi);
        if upto > next_free {
            steps.push(IbStep::FreeRows {
                from: next_free,
                to: upto,
            });
            next_free = upto;
        }
    }
    steps
}

/// Dry-run store/free trace (byte addresses relative to tensor bases).
pub fn ib_exec_trace(p: &IbParams, scheme: IbScheme) -> Vec<ExecEvent> {
    let w2 = p.hw2();
    let row_bytes = p.hw * p.c_in;
    ib_schedule(p, scheme)
        .into_iter()
        .filter_map(|step| match step {
            IbStep::BRow(_) => None,
            IbStep::OutPixel(pi, qi) => Some(ExecEvent::Store {
                addr: ((pi * w2 + qi) * p.c_out) as i64,
                len: p.c_out,
            }),
            IbStep::FreeRows { from, to } => Some(ExecEvent::Free {
                addr: (from * row_bytes) as i64,
                len: (to - from) * row_bytes,
            }),
        })
        .collect()
}

/// Minimal executable `bIn − bOut` (bytes) for the fused module.
pub fn ib_exec_distance(p: &IbParams, scheme: IbScheme) -> i64 {
    exec_distance(p.in_bytes(), ib_exec_trace(p, scheme))
}

/// Peak pool bytes (input/output window only; workspace is reported by
/// [`ib_workspace_bytes`]).
pub fn ib_exec_footprint(p: &IbParams, scheme: IbScheme) -> usize {
    let d = ib_exec_distance(p, scheme).max(0) as usize;
    (p.in_bytes() + d).max(p.out_bytes())
}

/// Workspace bytes beside the pool: the expanded-row ring (RowBuffer) or
/// the `R×S` expanded window (PixelWindow — the paper's `3×3` segments),
/// plus one post-depthwise pixel and one projected pixel (the `+1+1`).
pub fn ib_workspace_bytes(p: &IbParams, scheme: IbScheme) -> usize {
    let buf = match scheme {
        IbScheme::RowBuffer => p.rs.min(p.hw1()) * p.hw1() * p.c_mid,
        IbScheme::PixelWindow | IbScheme::SlidingWindow => p.rs * p.rs * p.c_mid,
    };
    buf + p.c_mid + p.c_out
}

/// Reference implementation of the whole module from oracle operators.
pub fn ib_reference(
    p: &IbParams,
    input: &Tensor<i8>,
    w1: &Tensor<i8>,
    wdw: &Tensor<i8>,
    w2: &Tensor<i8>,
) -> Tensor<i8> {
    let b = reference::pointwise(input, w1, None, p.s1, p.rq1, p.clamp1);
    let c = reference::depthwise(&b, wdw, None, p.s2, p.pad(), p.rq2, p.clamp2);
    let d = reference::pointwise(&c, w2, None, p.s3, p.rq3, p.clamp3);
    if p.has_residual() {
        reference::add(&d, input)
    } else {
        d
    }
}

/// Internal per-pixel pw1 evaluation: reads an `A` pixel from the pool,
/// expands it to `C_mid` int8 values.
#[allow(clippy::too_many_arguments)]
fn expand_pixel(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &IbParams,
    b_in: i64,
    y: usize,
    x: usize,
    flash: &IbFlash,
    w1_tile: &mut [u8],
    out: &mut [u8],
) -> Result<(), PoolError> {
    let mut a_reg = vec![0u8; p.c_in];
    pool.load(m, b_in + ((y * p.hw + x) * p.c_in) as i64, &mut a_reg)?;
    m.flash_load(flash.w1, w1_tile)?;
    let mut acc = vec![0i32; p.c_mid];
    broadcast(m, &mut acc, 0);
    dot_tile_u8(m, &a_reg, w1_tile, p.c_mid, &mut acc, true);
    requant_row(m, &acc, p.rq1, p.clamp1, out);
    Ok(())
}

/// Runs the fused inverted-bottleneck kernel.
///
/// * input `A[H,H,C_in]` at pool logical address `b_in`,
/// * output `E[H2,H2,C_out]` at pool logical address `b_out`,
/// * weights in Flash per [`IbFlash`],
/// * workspace at RAM address `ws_base`
///   (≥ [`ib_workspace_bytes`] minus the two register pixels).
///
/// # Errors
///
/// Propagates pool violations (offset too tight) and memory errors.
// Bases and offsets stay unbundled to mirror the on-device kernel ABI
// (§6.1), where each lands in its own register-passed argument.
#[allow(clippy::too_many_arguments)]
pub fn run_fused_ib(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &IbParams,
    scheme: IbScheme,
    b_in: i64,
    b_out: i64,
    flash: &IbFlash,
    ws_base: usize,
) -> Result<(), PoolError> {
    let (h1, h2) = (p.hw1(), p.hw2());
    let (w1_w, w2_w) = (h1, h2);
    let pad = p.pad();
    let mut w1_tile = vec![0u8; p.c_in * p.c_mid];
    let mut w2_tile = vec![0u8; p.c_mid * p.c_out];
    let mut wdw_reg = vec![0u8; p.c_mid];
    let mut b_pixel = vec![0u8; p.c_mid];
    let mut c_pixel = vec![0u8; p.c_mid];
    let mut d_pixel = vec![0u8; p.c_out];
    let mut acc_mid = vec![0i32; p.c_mid];
    let mut acc_out = vec![0i32; p.c_out];
    let row_bytes = p.hw * p.c_in;

    for step in ib_schedule(p, scheme) {
        match step {
            IbStep::BRow(b) => {
                // RowBuffer: expand row b of B into its ring slot (the
                // ring never exceeds the image height).
                let slot = b % p.rs.min(h1);
                for x1 in 0..w1_w {
                    expand_pixel(
                        m,
                        pool,
                        p,
                        b_in,
                        b * p.s1,
                        x1 * p.s1,
                        flash,
                        &mut w1_tile,
                        &mut b_pixel,
                    )?;
                    m.ram_store(ws_base + (slot * w1_w + x1) * p.c_mid, &b_pixel)?;
                }
                m.charge_branches(1);
            }
            IbStep::OutPixel(pi, qi) => {
                // Window schemes: (re)compute expanded pixels into the
                // workspace window slots first. PixelWindow refreshes the
                // whole window; SlidingWindow only the columns that enter
                // it at this step.
                if scheme != IbScheme::RowBuffer {
                    // Columns of B this window covers.
                    let col_lo = (qi * p.s2) as isize - pad as isize;
                    // First *new* column: SlidingWindow reuses everything
                    // up to the previous window's right edge (except at
                    // the start of each row sweep).
                    let new_from = if scheme == IbScheme::SlidingWindow && qi > 0 {
                        ((qi - 1) * p.s2 + p.rs) as isize - pad as isize
                    } else {
                        col_lo
                    };
                    for r in 0..p.rs {
                        let b = (pi * p.s2 + r) as isize - pad as isize;
                        if b < 0 || b >= h1 as isize {
                            continue;
                        }
                        for s in 0..p.rs {
                            let x1 = col_lo + s as isize;
                            if x1 < 0 || x1 >= w1_w as isize || x1 < new_from {
                                continue;
                            }
                            expand_pixel(
                                m,
                                pool,
                                p,
                                b_in,
                                b as usize * p.s1,
                                x1 as usize * p.s1,
                                flash,
                                &mut w1_tile,
                                &mut b_pixel,
                            )?;
                            // Column-ring slot so the window slides without
                            // copies.
                            let slot = match scheme {
                                IbScheme::SlidingWindow => x1 as usize % p.rs,
                                _ => s,
                            };
                            m.ram_store(ws_base + (r * p.rs + slot) * p.c_mid, &b_pixel)?;
                        }
                    }
                }
                // Depthwise over the window.
                broadcast(m, &mut acc_mid, 0);
                let mut taps = 0u64;
                for r in 0..p.rs {
                    let b = (pi * p.s2 + r) as isize - pad as isize;
                    if b < 0 || b >= h1 as isize {
                        continue;
                    }
                    for s in 0..p.rs {
                        let x1 = (qi * p.s2 + s) as isize - pad as isize;
                        if x1 < 0 || x1 >= w1_w as isize {
                            continue;
                        }
                        let ws_addr = match scheme {
                            IbScheme::RowBuffer => {
                                ws_base
                                    + ((b as usize % p.rs.min(h1)) * w1_w + x1 as usize) * p.c_mid
                            }
                            IbScheme::PixelWindow => ws_base + (r * p.rs + s) * p.c_mid,
                            IbScheme::SlidingWindow => {
                                ws_base + (r * p.rs + x1 as usize % p.rs) * p.c_mid
                            }
                        };
                        m.ram_load(ws_addr, &mut b_pixel)?;
                        m.flash_load(flash.wdw + (r * p.rs + s) * p.c_mid, &mut wdw_reg)?;
                        for c in 0..p.c_mid {
                            acc_mid[c] += i32::from(b_pixel[c] as i8) * i32::from(wdw_reg[c] as i8);
                        }
                        taps += 1;
                    }
                }
                // Batched per pixel, counter-identical to per-tap charges.
                m.charge_macs_batched(p.c_mid as u64, taps, true);
                requant_row(m, &acc_mid, p.rq2, p.clamp2, &mut c_pixel);
                // Project (pw2).
                broadcast(m, &mut acc_out, 0);
                m.flash_load(flash.w2, &mut w2_tile)?;
                dot_tile_u8(m, &c_pixel, &w2_tile, p.c_out, &mut acc_out, true);
                requant_row(m, &acc_out, p.rq3, p.clamp3, &mut d_pixel);
                // Residual add with the original A pixel.
                if p.has_residual() {
                    let mut a_reg = vec![0u8; p.c_in];
                    pool.load(m, b_in + ((pi * p.hw + qi) * p.c_in) as i64, &mut a_reg)?;
                    for c in 0..p.c_out {
                        d_pixel[c] =
                            sat8(i64::from(d_pixel[c] as i8) + i64::from(a_reg[c] as i8)) as u8;
                    }
                    m.charge_cycles(p.c_out as u64);
                }
                // Store E — the segment goes back into the pool, possibly
                // replacing a freed A segment.
                pool.store(m, &d_pixel, b_out + ((pi * w2_w + qi) * p.c_out) as i64)?;
                m.charge_branches(1);
            }
            IbStep::FreeRows { from, to } => {
                pool.free(b_in + (from * row_bytes) as i64, (to - from) * row_bytes)?;
                m.charge_branches(1);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;
    use vmcu_tensor::{random, Requant};

    fn weights(p: &IbParams) -> (Tensor<i8>, Tensor<i8>, Tensor<i8>) {
        (
            random::tensor_i8(&[p.c_in, p.c_mid], 71),
            random::tensor_i8(&[p.rs, p.rs, p.c_mid], 72),
            random::tensor_i8(&[p.c_mid, p.c_out], 73),
        )
    }

    fn run_case(p: &IbParams, scheme: IbScheme, extra: i64) -> Result<Tensor<i8>, PoolError> {
        let mut m = Machine::new(Device::stm32_f767zi());
        let input = random::tensor_i8(&[p.hw, p.hw, p.c_in], 70);
        let (w1, wdw, w2) = weights(p);
        let flash = IbFlash {
            w1: m.host_program_flash(&w1.as_bytes()).unwrap(),
            wdw: m.host_program_flash(&wdw.as_bytes()).unwrap(),
            w2: m.host_program_flash(&w2.as_bytes()).unwrap(),
        };
        let d = ib_exec_distance(p, scheme) + extra;
        let used = d.max(0) as usize;
        let window = (p.in_bytes() + used).max(p.out_bytes());
        let ws = ib_workspace_bytes(p, scheme);
        let mut pool = SegmentPool::new(&m, 0, window, p.seg()).unwrap();
        let ws_base = window; // workspace right after the pool window
        assert!(ws_base + ws < m.ram.capacity());
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_fused_ib(&mut m, &mut pool, p, scheme, 0, -d, &flash, ws_base)?;
        let out = pool.host_read(&m, -d, p.out_bytes())?;
        Ok(Tensor::from_bytes(&[p.hw2(), p.hw2(), p.c_out], &out))
    }

    fn expected(p: &IbParams) -> Tensor<i8> {
        let input = random::tensor_i8(&[p.hw, p.hw, p.c_in], 70);
        let (w1, wdw, w2) = weights(p);
        ib_reference(p, &input, &w1, &wdw, &w2)
    }

    fn small_residual() -> IbParams {
        let mut p = IbParams::new(8, 4, 12, 4, 3, (1, 1, 1));
        p.rq1 = Requant::from_scale(1.0 / 32.0, 0);
        p.rq2 = Requant::from_scale(1.0 / 16.0, 0);
        p.rq3 = Requant::from_scale(1.0 / 32.0, 0);
        p.clamp1 = (0, 127);
        p.clamp2 = (0, 127);
        p
    }

    #[test]
    fn residual_module_matches_reference_row_buffer() {
        let p = small_residual();
        assert!(p.has_residual());
        assert_eq!(run_case(&p, IbScheme::RowBuffer, 0).unwrap(), expected(&p));
    }

    #[test]
    fn residual_module_matches_reference_pixel_window() {
        let p = small_residual();
        assert_eq!(
            run_case(&p, IbScheme::PixelWindow, 0).unwrap(),
            expected(&p)
        );
    }

    #[test]
    fn strided_expand_matches_reference() {
        // B1-style: pw1 stride 2, no residual.
        let mut p = IbParams::new(9, 3, 8, 6, 3, (2, 1, 1));
        p.rq1 = Requant::from_scale(1.0 / 16.0, 0);
        assert!(!p.has_residual());
        for scheme in [
            IbScheme::RowBuffer,
            IbScheme::PixelWindow,
            IbScheme::SlidingWindow,
        ] {
            assert_eq!(run_case(&p, scheme, 0).unwrap(), expected(&p), "{scheme:?}");
        }
    }

    #[test]
    fn strided_depthwise_matches_reference() {
        // B2-style: dw stride 2 with a large 5x5 window.
        let mut p = IbParams::new(10, 4, 8, 6, 5, (1, 2, 1));
        p.rq2 = Requant::from_scale(1.0 / 64.0, 1);
        for scheme in [
            IbScheme::RowBuffer,
            IbScheme::PixelWindow,
            IbScheme::SlidingWindow,
        ] {
            assert_eq!(run_case(&p, scheme, 0).unwrap(), expected(&p), "{scheme:?}");
        }
    }

    #[test]
    fn channel_change_without_residual_matches_reference() {
        // S3-style: stride 1 everywhere but C_in != C_out -> no residual.
        let p = IbParams::new(6, 6, 18, 4, 3, (1, 1, 1));
        assert!(!p.has_residual());
        for scheme in [
            IbScheme::RowBuffer,
            IbScheme::PixelWindow,
            IbScheme::SlidingWindow,
        ] {
            assert_eq!(run_case(&p, scheme, 0).unwrap(), expected(&p), "{scheme:?}");
        }
    }

    #[test]
    fn exec_distance_is_tight_for_both_schemes() {
        let p = small_residual();
        for scheme in [
            IbScheme::RowBuffer,
            IbScheme::PixelWindow,
            IbScheme::SlidingWindow,
        ] {
            assert!(run_case(&p, scheme, 0).is_ok(), "{scheme:?}");
            assert!(
                matches!(
                    run_case(&p, scheme, -1).unwrap_err(),
                    PoolError::Clobber { .. }
                ),
                "{scheme:?} must clobber one byte short"
            );
        }
    }

    #[test]
    fn fused_footprint_beats_materializing_b() {
        // Table 2 S1: fused pool window + workspace must be far below the
        // A+B peak that tensor-level managers pay.
        let p = IbParams::new(20, 16, 48, 16, 3, (1, 1, 1));
        for scheme in [
            IbScheme::RowBuffer,
            IbScheme::PixelWindow,
            IbScheme::SlidingWindow,
        ] {
            let total = ib_exec_footprint(&p, scheme) + ib_workspace_bytes(&p, scheme);
            assert!(
                total < p.in_bytes() + p.mid_bytes(),
                "{scheme:?}: {total} vs A+B {}",
                p.in_bytes() + p.mid_bytes()
            );
        }
    }

    #[test]
    fn pixel_window_uses_less_workspace_but_more_macs() {
        let p = small_residual();
        assert!(
            ib_workspace_bytes(&p, IbScheme::PixelWindow)
                < ib_workspace_bytes(&p, IbScheme::RowBuffer)
        );
        let mac = |scheme| {
            let mut m = Machine::new(Device::stm32_f767zi());
            let input = random::tensor_i8(&[p.hw, p.hw, p.c_in], 70);
            let (w1, wdw, w2) = weights(&p);
            let flash = IbFlash {
                w1: m.host_program_flash(&w1.as_bytes()).unwrap(),
                wdw: m.host_program_flash(&wdw.as_bytes()).unwrap(),
                w2: m.host_program_flash(&w2.as_bytes()).unwrap(),
            };
            let d = ib_exec_distance(&p, scheme);
            let window = ib_exec_footprint(&p, scheme);
            let mut pool = SegmentPool::new(&m, 0, window, p.seg()).unwrap();
            pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
            run_fused_ib(&mut m, &mut pool, &p, scheme, 0, -d, &flash, window).unwrap();
            m.counters.macs
        };
        assert!(mac(IbScheme::PixelWindow) > mac(IbScheme::RowBuffer));
    }

    #[test]
    fn workspace_accounting_matches_paper_segments() {
        // The paper: 11 segments = 3x3 + 1 + 1 for PixelWindow.
        let p = IbParams::new(20, 16, 48, 16, 3, (1, 1, 1));
        let ws = ib_workspace_bytes(&p, IbScheme::PixelWindow);
        assert_eq!(ws, 9 * 48 + 48 + 16);
    }
}
