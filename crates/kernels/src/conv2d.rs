//! Segment-aware dense 2D convolution — Figure 5 of the paper.
//!
//! Same two-level tiling as the fully-connected kernel, with the filter
//! window loops (`r`, `s`) between the outer spatial loops and the channel
//! segment loops. Input pixel rows are freed as soon as no later output
//! row's window can touch them, which is what lets the output chase the
//! input through the circular pool.

use crate::intrinsics::{broadcast, dot_tile_u8, requant_row};
use crate::params::Conv2dParams;
use crate::trace::{exec_distance, ExecEvent};
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;

/// Exclusive upper bound of input rows that are dead once output row `p`
/// has been produced (shared by the kernel, its trace, and the im2col
/// lowering, which reproduces the same store/free order).
pub(crate) fn free_upto(p: &Conv2dParams, row: usize) -> usize {
    if row + 1 == p.out_h() {
        p.h
    } else {
        p.h.min(((row + 1) * p.stride).saturating_sub(p.pad))
    }
}

/// Dry-run of the kernel's store/free schedule (byte addresses).
pub fn conv2d_exec_trace(p: &Conv2dParams) -> Vec<ExecEvent> {
    let (q_out, k) = (p.out_w(), p.k);
    let row_bytes = p.w * p.c;
    let mut ev = Vec::new();
    let mut next_free = 0usize;
    for pi in 0..p.out_h() {
        for qi in 0..q_out {
            let mut k0 = 0;
            while k0 < k {
                let kw = p.seg.min(k - k0);
                ev.push(ExecEvent::Store {
                    addr: ((pi * q_out + qi) * k + k0) as i64,
                    len: kw,
                });
                k0 += kw;
            }
        }
        let upto = free_upto(p, pi);
        if upto > next_free {
            ev.push(ExecEvent::Free {
                addr: (next_free * row_bytes) as i64,
                len: (upto - next_free) * row_bytes,
            });
            next_free = upto;
        }
    }
    ev
}

/// Minimal executable `bIn − bOut` (bytes).
pub fn conv2d_exec_distance(p: &Conv2dParams) -> i64 {
    exec_distance(p.in_bytes(), conv2d_exec_trace(p))
}

/// Peak pool bytes when running with [`conv2d_exec_distance`].
pub fn conv2d_exec_footprint(p: &Conv2dParams) -> usize {
    let d = conv2d_exec_distance(p).max(0) as usize;
    (p.in_bytes() + d).max(p.out_bytes())
}

/// Runs the 2D convolution kernel. Input `[H,W,C]` at pool address `b_in`,
/// output `[P,Q,K]` at `b_out`, weights `[R,S,C,K]` in Flash at `w_base`.
///
/// # Errors
///
/// Propagates pool violations and memory errors.
///
/// # Panics
///
/// Panics if `bias` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn run_conv2d(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &Conv2dParams,
    b_in: i64,
    b_out: i64,
    w_base: usize,
    bias: Option<&[i32]>,
) -> Result<(), PoolError> {
    if let Some(b) = bias {
        assert_eq!(b.len(), p.k, "bias length mismatch");
    }
    let seg = p.seg;
    let (p_out, q_out) = (p.out_h(), p.out_w());
    let mut a_reg = vec![0u8; seg];
    let mut w_tile = vec![0u8; seg * seg];
    let mut acc = vec![0i32; seg];
    let mut out_reg = vec![0u8; seg];
    let mut next_free = 0usize;
    for pi in 0..p_out {
        for qi in 0..q_out {
            let mut k0 = 0;
            while k0 < p.k {
                let kw = seg.min(p.k - k0);
                broadcast(m, &mut acc[..kw], 0);
                if let Some(b) = bias {
                    for (a, &bv) in acc[..kw].iter_mut().zip(&b[k0..k0 + kw]) {
                        *a = bv;
                    }
                }
                for ri in 0..p.r {
                    let y = (pi * p.stride + ri) as isize - p.pad as isize;
                    if y < 0 || y >= p.h as isize {
                        continue;
                    }
                    for si in 0..p.s {
                        let x = (qi * p.stride + si) as isize - p.pad as isize;
                        if x < 0 || x >= p.w as isize {
                            continue;
                        }
                        let mut c0 = 0;
                        while c0 < p.c {
                            let cw = seg.min(p.c - c0);
                            let in_addr = ((y as usize * p.w + x as usize) * p.c + c0) as i64;
                            pool.load(m, b_in + in_addr, &mut a_reg[..cw])?;
                            for cc in 0..cw {
                                let row = w_base + ((ri * p.s + si) * p.c + c0 + cc) * p.k + k0;
                                m.flash_load(row, &mut w_tile[cc * kw..cc * kw + kw])?;
                            }
                            dot_tile_u8(
                                m,
                                &a_reg[..cw],
                                &w_tile[..cw * kw],
                                kw,
                                &mut acc[..kw],
                                true,
                            );
                            m.charge_branches(1);
                            c0 += cw;
                        }
                    }
                }
                requant_row(m, &acc[..kw], p.rq, p.clamp, &mut out_reg[..kw]);
                pool.store(
                    m,
                    &out_reg[..kw],
                    b_out + ((pi * q_out + qi) * p.k + k0) as i64,
                )?;
                m.charge_branches(1);
                k0 += kw;
            }
        }
        let upto = free_upto(p, pi);
        if upto > next_free {
            pool.free(
                b_in + (next_free * p.w * p.c) as i64,
                (upto - next_free) * p.w * p.c,
            )?;
            next_free = upto;
        }
        m.charge_branches(1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;
    use vmcu_tensor::{random, reference, Requant, Tensor};

    fn run_case(p: &Conv2dParams, extra: i64) -> Result<(Tensor<i8>, Machine), PoolError> {
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[p.h, p.w, p.c], 31);
        let weight = random::tensor_i8(&[p.r, p.s, p.c, p.k], 32);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let d = conv2d_exec_distance(p) + extra;
        let used = d.max(0) as usize;
        let window = (p.in_bytes() + used).max(p.out_bytes());
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_conv2d(&mut m, &mut pool, p, 0, -d, w_base, None)?;
        let out = pool.host_read(&m, -d, p.out_bytes())?;
        Ok((Tensor::from_bytes(&[p.out_h(), p.out_w(), p.k], &out), m))
    }

    fn expected(p: &Conv2dParams) -> Tensor<i8> {
        let input = random::tensor_i8(&[p.h, p.w, p.c], 31);
        let weight = random::tensor_i8(&[p.r, p.s, p.c, p.k], 32);
        reference::conv2d(&input, &weight, None, p.stride, p.pad, p.rq, p.clamp)
    }

    #[test]
    fn matches_reference_same_padding() {
        let p = Conv2dParams::new(6, 6, 4, 4, 3, 3, 1, 1, Requant::from_scale(1.0 / 64.0, 0));
        let (out, _) = run_case(&p, 0).unwrap();
        assert_eq!(out, expected(&p));
    }

    #[test]
    fn matches_reference_valid_padding() {
        let p = Conv2dParams::new(7, 7, 3, 5, 3, 3, 1, 0, Requant::from_scale(1.0 / 32.0, 2));
        let (out, _) = run_case(&p, 0).unwrap();
        assert_eq!(out, expected(&p));
    }

    #[test]
    fn matches_reference_stride_two() {
        let p = Conv2dParams::new(8, 8, 4, 6, 3, 3, 2, 1, Requant::from_scale(1.0 / 64.0, -3));
        let (out, _) = run_case(&p, 0).unwrap();
        assert_eq!(out, expected(&p));
    }

    #[test]
    fn matches_reference_ragged_segments() {
        // seg = min(C,K) = 3 does not divide K = 5.
        let p = Conv2dParams::new(5, 5, 3, 5, 3, 3, 1, 1, Requant::from_scale(1.0 / 16.0, 1));
        let (out, _) = run_case(&p, 0).unwrap();
        assert_eq!(out, expected(&p));
    }

    #[test]
    fn exec_distance_is_tight_empirically() {
        let p = Conv2dParams::new(6, 6, 4, 4, 3, 3, 1, 1, Requant::from_scale(1.0 / 64.0, 0));
        assert!(run_case(&p, 0).is_ok());
        assert!(matches!(
            run_case(&p, -1).unwrap_err(),
            PoolError::Clobber { .. }
        ));
    }

    #[test]
    fn footprint_beats_disjoint_for_equal_channels() {
        let p = Conv2dParams::new(16, 16, 8, 8, 3, 3, 1, 1, Requant::identity());
        let fp = conv2d_exec_footprint(&p);
        assert!(fp < p.in_bytes() + p.out_bytes());
    }

    #[test]
    fn stride_two_overlap_is_cheap() {
        // Output shrinks 4x; the writer never catches the reader, so the
        // footprint stays close to the input size.
        let p = Conv2dParams::new(16, 16, 8, 8, 3, 3, 2, 1, Requant::identity());
        let fp = conv2d_exec_footprint(&p);
        assert!(fp < p.in_bytes() + p.in_bytes() / 4);
    }

    #[test]
    fn mac_counters_match_exact_tap_count() {
        let p = Conv2dParams::new(5, 5, 2, 3, 3, 3, 1, 1, Requant::from_scale(0.05, 0));
        let (_, m) = run_case(&p, 0).unwrap();
        assert_eq!(m.counters.macs, p.macs());
    }
}
