//! Segment-aware pointwise (1×1) convolution.
//!
//! A stride-1 pointwise convolution over NHWC data *is* the
//! fully-connected kernel with `M = H·W` rows: each pixel's channel vector
//! is one input row, the `[C, K]` weight matrix is shared. This is the
//! single-layer workload of the paper's Figure 7/8 evaluation (pointwise
//! and depthwise convolutions dominate the CNNs deployed on MCUs, §7.2).

use crate::fc::{fc_exec_distance, fc_exec_footprint, run_fc};
use crate::params::PointwiseParams;
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;

/// Minimal executable `bIn − bOut` (bytes) for the pointwise kernel.
pub fn pointwise_exec_distance(p: &PointwiseParams) -> i64 {
    fc_exec_distance(&p.as_fc())
}

/// Peak pool bytes when running with [`pointwise_exec_distance`].
pub fn pointwise_exec_footprint(p: &PointwiseParams) -> usize {
    fc_exec_footprint(&p.as_fc())
}

/// Runs the pointwise kernel. Input `[H,W,C]` at pool address `b_in`,
/// output `[H,W,K]` at `b_out`, weights `[C,K]` in Flash at `w_base`.
///
/// # Errors
///
/// Propagates pool violations and memory errors.
pub fn run_pointwise(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &PointwiseParams,
    b_in: i64,
    b_out: i64,
    w_base: usize,
    bias: Option<&[i32]>,
) -> Result<(), PoolError> {
    run_fc(m, pool, &p.as_fc(), b_in, b_out, w_base, bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;
    use vmcu_tensor::{random, reference, Requant, Tensor};

    fn run_case(p: &PointwiseParams) -> (Tensor<i8>, Machine) {
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[p.h, p.w, p.c], 5);
        let weight = random::tensor_i8(&[p.c, p.k], 6);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let d = pointwise_exec_distance(p);
        let window = pointwise_exec_footprint(p);
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_pointwise(&mut m, &mut pool, p, 0, -d, w_base, None).unwrap();
        let out = pool.host_read(&m, -d, p.out_bytes()).unwrap();
        (Tensor::from_bytes(&[p.h, p.w, p.k], &out), m)
    }

    #[test]
    fn matches_reference() {
        let p = PointwiseParams::new(6, 6, 8, 4, Requant::from_scale(1.0 / 32.0, 0));
        let (out, _) = run_case(&p);
        let input = random::tensor_i8(&[p.h, p.w, p.c], 5);
        let weight = random::tensor_i8(&[p.c, p.k], 6);
        let expected = reference::pointwise(&input, &weight, None, 1, p.rq, p.clamp);
        assert_eq!(out, expected);
    }

    #[test]
    fn expanding_channels_matches_reference() {
        let p = PointwiseParams::new(4, 5, 3, 7, Requant::from_scale(1.0 / 16.0, -1));
        let (out, _) = run_case(&p);
        let input = random::tensor_i8(&[p.h, p.w, p.c], 5);
        let weight = random::tensor_i8(&[p.c, p.k], 6);
        let expected = reference::pointwise(&input, &weight, None, 1, p.rq, p.clamp);
        assert_eq!(out, expected);
    }

    #[test]
    fn equal_channels_footprint_is_near_half_of_disjoint() {
        // The Figure 7 headline: C == K layers approach 50% RAM reduction.
        let p = PointwiseParams::new(20, 20, 16, 16, Requant::identity());
        let fp = pointwise_exec_footprint(&p) as f64;
        let disjoint = (p.in_bytes() + p.out_bytes()) as f64;
        let reduction = 1.0 - fp / disjoint;
        assert!(
            reduction > 0.45,
            "expected ~50% reduction, got {reduction:.3}"
        );
    }

    #[test]
    fn footprint_counters_agree_with_pool_peak() {
        let p = PointwiseParams::new(5, 5, 8, 8, Requant::from_scale(0.02, 0));
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[p.h, p.w, p.c], 5);
        let weight = random::tensor_i8(&[p.c, p.k], 6);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let d = pointwise_exec_distance(&p);
        let window = pointwise_exec_footprint(&p);
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_pointwise(&mut m, &mut pool, &p, 0, -d, w_base, None).unwrap();
        // The empirical high-water mark can never exceed the planned window.
        assert!(pool.peak_live_bytes() <= window);
        assert!(pool.peak_live_bytes() >= p.in_bytes());
    }
}
