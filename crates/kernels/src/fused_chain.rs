//! Generalized multi-layer fused chain kernel — the paper's multi-layer
//! case (§5.2) beyond inverted bottlenecks.
//!
//! A [`FusedChain`] is a run of consecutive layers (pointwise, depthwise,
//! dense 2D convolution, fully-connected) executed as **one** kernel:
//! intermediate tensors never materialize. Each intermediate keeps only a
//! ring of the rows its consumer's sliding window still needs (the
//! line-buffer generalization of `fused_ib`'s expanded-row ring), all
//! rings live side by side in one workspace arena, and the chain's final
//! output rows replace freed input rows inside the circular segment pool
//! — so the whole chain deploys in
//! `max(in + D_exec, out) + Σ ring bytes` instead of paying the largest
//! intermediate twice like layer-at-a-time planning does.
//!
//! The execution order is a single demand-driven schedule
//! ([`chain_schedule`]): rows of stage `i` are produced just in time for
//! the stage-`i+1` window that consumes them. The kernel executes the
//! schedule, the dry-run trace ([`chain_exec_trace`]) mirrors it, and the
//! planner's offset ([`chain_exec_distance`]) derives from that trace —
//! correct by construction and verified empirically by the checked pool.

use crate::intrinsics::{broadcast, dot_tile_u8, requant_row};
use crate::params::{Conv2dParams, DepthwiseParams, FcParams, PointwiseParams};
use crate::trace::{exec_distance, ExecEvent};
use std::fmt;
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;

/// One fusable operator of a chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChainOp {
    /// Pointwise (1×1) convolution, stride 1.
    Pointwise(PointwiseParams),
    /// Depthwise convolution.
    Depthwise(DepthwiseParams),
    /// Dense 2D convolution.
    Conv2d(Conv2dParams),
    /// Fully-connected layer (each of the `M` rows is independent).
    Dense(FcParams),
}

impl ChainOp {
    /// Human-readable operator kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ChainOp::Pointwise(_) => "pointwise",
            ChainOp::Depthwise(_) => "depthwise",
            ChainOp::Conv2d(_) => "conv2d",
            ChainOp::Dense(_) => "dense",
        }
    }

    /// Number of input rows (the pipelined dimension).
    pub fn in_rows(&self) -> usize {
        match self {
            ChainOp::Pointwise(p) => p.h,
            ChainOp::Depthwise(p) => p.h,
            ChainOp::Conv2d(p) => p.h,
            ChainOp::Dense(p) => p.m,
        }
    }

    /// Bytes per input row.
    pub fn in_row_bytes(&self) -> usize {
        match self {
            ChainOp::Pointwise(p) => p.w * p.c,
            ChainOp::Depthwise(p) => p.w * p.c,
            ChainOp::Conv2d(p) => p.w * p.c,
            ChainOp::Dense(p) => p.k,
        }
    }

    /// Number of output rows.
    pub fn out_rows(&self) -> usize {
        match self {
            ChainOp::Pointwise(p) => p.h,
            ChainOp::Depthwise(p) => p.out_h(),
            ChainOp::Conv2d(p) => p.out_h(),
            ChainOp::Dense(p) => p.m,
        }
    }

    /// Bytes per output row.
    pub fn out_row_bytes(&self) -> usize {
        match self {
            ChainOp::Pointwise(p) => p.w * p.k,
            ChainOp::Depthwise(p) => p.out_w() * p.c,
            ChainOp::Conv2d(p) => p.out_w() * p.k,
            ChainOp::Dense(p) => p.n,
        }
    }

    /// Sliding-window geometry in the row dimension:
    /// `(window rows, stride, padding)`.
    pub fn row_window(&self) -> (usize, usize, usize) {
        match self {
            ChainOp::Pointwise(_) | ChainOp::Dense(_) => (1, 1, 0),
            ChainOp::Depthwise(p) => (p.r, p.stride, p.pad),
            ChainOp::Conv2d(p) => (p.r, p.stride, p.pad),
        }
    }

    /// Segment-size hint for the pool (§5.3 channel rule).
    pub fn seg(&self) -> usize {
        match self {
            ChainOp::Pointwise(p) => p.seg,
            ChainOp::Depthwise(p) => p.c,
            ChainOp::Conv2d(p) => p.seg,
            ChainOp::Dense(p) => p.seg,
        }
    }

    /// Highest input row (unclamped, may be negative with padding) needed
    /// to produce output row `row`.
    fn need_hi(&self, row: usize) -> i64 {
        let (r, stride, pad) = self.row_window();
        (row * stride + r - 1) as i64 - pad as i64
    }

    /// Lowest input row needed to produce output row `row`.
    fn need_lo(&self, row: usize) -> usize {
        let (_, stride, pad) = self.row_window();
        (row * stride).saturating_sub(pad)
    }
}

/// Error from chain construction: consecutive operators whose row
/// geometry does not compose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainShapeError {
    /// Index of the operator whose input does not match.
    pub op: usize,
    /// `(rows, row_bytes)` the predecessor produces.
    pub produced: (usize, usize),
    /// `(rows, row_bytes)` this operator expects.
    pub expected: (usize, usize),
}

impl fmt::Display for ChainShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chain op {} expects {:?} (rows, row bytes) but predecessor produces {:?}",
            self.op, self.expected, self.produced
        )
    }
}

impl std::error::Error for ChainShapeError {}

/// A fused multi-layer chain.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedChain {
    ops: Vec<ChainOp>,
}

impl FusedChain {
    /// Builds a chain, validating that consecutive row geometries compose.
    ///
    /// # Errors
    ///
    /// Returns [`ChainShapeError`] on the first mismatching edge.
    ///
    /// # Panics
    ///
    /// Panics on an empty operator list.
    pub fn new(ops: Vec<ChainOp>) -> Result<Self, ChainShapeError> {
        assert!(!ops.is_empty(), "a chain needs at least one operator");
        for i in 1..ops.len() {
            let produced = (ops[i - 1].out_rows(), ops[i - 1].out_row_bytes());
            let expected = (ops[i].in_rows(), ops[i].in_row_bytes());
            if produced != expected {
                return Err(ChainShapeError {
                    op: i,
                    produced,
                    expected,
                });
            }
        }
        Ok(Self { ops })
    }

    /// The operators in execution order.
    pub fn ops(&self) -> &[ChainOp] {
        &self.ops
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the chain is empty (never true for a constructed chain).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Row counts of every tensor: `heights()[0]` is the chain input,
    /// `heights()[i]` the output of operator `i - 1`.
    pub fn heights(&self) -> Vec<usize> {
        let mut h = Vec::with_capacity(self.ops.len() + 1);
        h.push(self.ops[0].in_rows());
        for op in &self.ops {
            h.push(op.out_rows());
        }
        h
    }

    /// Chain input bytes.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty — construction requires at least
    /// one operator.
    pub fn in_bytes(&self) -> usize {
        self.ops[0].in_rows() * self.ops[0].in_row_bytes()
    }

    /// Chain output bytes.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty — construction requires at least
    /// one operator.
    pub fn out_bytes(&self) -> usize {
        let last = self.ops.last().expect("non-empty chain");
        last.out_rows() * last.out_row_bytes()
    }

    /// Ring capacity (in rows) for intermediate tensor `i` (`1 ≤ i < n`):
    /// the consumer's window height, clamped to the tensor height.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an intermediate index (`1 ≤ i < n`).
    pub fn ring_rows(&self, i: usize) -> usize {
        assert!(i >= 1 && i < self.ops.len(), "intermediate index");
        let (r, _, _) = self.ops[i].row_window();
        r.min(self.heights()[i])
    }

    /// Segment-size hint for the pool window (first operator's rule).
    pub fn seg(&self) -> usize {
        self.ops[0].seg().max(1)
    }
}

/// One step of the fused chain schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainStep {
    /// Produce row `row` of intermediate tensor `stage` (`1 ≤ stage < n`)
    /// into its workspace ring.
    ProduceRow {
        /// Intermediate tensor index.
        stage: usize,
        /// Row to produce.
        row: usize,
    },
    /// Produce final output row `row` and store it into the pool.
    StoreOutRow(usize),
    /// Free chain-input rows `[from, to)` from the pool.
    FreeInRows {
        /// First row to free.
        from: usize,
        /// One past the last row to free.
        to: usize,
    },
}

/// Recursively tops intermediate `stage` up to row `upto` (inclusive),
/// producing upstream rows just in time so every ring read stays within
/// its ring's capacity.
fn ensure_rows(
    chain: &FusedChain,
    heights: &[usize],
    produced: &mut [usize],
    steps: &mut Vec<ChainStep>,
    stage: usize,
    upto: i64,
) {
    while (produced[stage] as i64) <= upto {
        let row = produced[stage];
        if stage > 1 {
            let need = chain.ops[stage - 1]
                .need_hi(row)
                .min(heights[stage - 1] as i64 - 1);
            ensure_rows(chain, heights, produced, steps, stage - 1, need);
        }
        steps.push(ChainStep::ProduceRow { stage, row });
        produced[stage] += 1;
    }
}

/// The shared fused schedule: the kernel executes it, the trace mirrors
/// it, and tests assert their agreement.
pub fn chain_schedule(chain: &FusedChain) -> Vec<ChainStep> {
    let n = chain.len();
    let heights = chain.heights();
    let mut produced = vec![0usize; n.max(2)];
    let mut steps = Vec::new();
    let mut freed = 0usize;
    for p in 0..heights[n] {
        if n > 1 {
            let need = chain.ops[n - 1].need_hi(p).min(heights[n - 1] as i64 - 1);
            ensure_rows(chain, &heights, &mut produced, &mut steps, n - 1, need);
        }
        steps.push(ChainStep::StoreOutRow(p));
        // Retire input rows nothing downstream will read again: the next
        // stage-1 row to produce (or, for a single-op chain, the next
        // output row) bounds the live input window from below.
        let in_lo = if n == 1 {
            if p + 1 == heights[1] {
                heights[0]
            } else {
                chain.ops[0].need_lo(p + 1)
            }
        } else if produced[1] == heights[1] {
            heights[0]
        } else {
            chain.ops[0].need_lo(produced[1])
        };
        if in_lo > freed {
            steps.push(ChainStep::FreeInRows {
                from: freed,
                to: in_lo,
            });
            freed = in_lo;
        }
    }
    steps
}

/// Dry-run store/free trace over the pool tensors (byte addresses
/// relative to the chain input/output bases).
///
/// # Panics
///
/// Panics if the chain is empty — construction requires at least one
/// operator.
pub fn chain_exec_trace(chain: &FusedChain) -> Vec<ExecEvent> {
    let irb = chain.ops[0].in_row_bytes();
    let orb = chain.ops.last().expect("non-empty chain").out_row_bytes();
    chain_schedule(chain)
        .into_iter()
        .filter_map(|step| match step {
            ChainStep::ProduceRow { .. } => None,
            ChainStep::StoreOutRow(p) => Some(ExecEvent::Store {
                addr: (p * orb) as i64,
                len: orb,
            }),
            ChainStep::FreeInRows { from, to } => Some(ExecEvent::Free {
                addr: (from * irb) as i64,
                len: (to - from) * irb,
            }),
        })
        .collect()
}

/// Minimal executable `bIn − bOut` (bytes) for the fused chain.
pub fn chain_exec_distance(chain: &FusedChain) -> i64 {
    exec_distance(chain.in_bytes(), chain_exec_trace(chain))
}

/// Peak pool bytes (input/output window only; ring buffers are reported
/// by [`chain_workspace_bytes`]).
pub fn chain_exec_footprint(chain: &FusedChain) -> usize {
    let d = chain_exec_distance(chain).max(0) as usize;
    (chain.in_bytes() + d).max(chain.out_bytes())
}

/// Workspace bytes beside the pool: one line-buffer ring per intermediate
/// tensor plus the widest staging row.
pub fn chain_workspace_bytes(chain: &FusedChain) -> usize {
    let n = chain.len();
    let rings: usize = (1..n)
        .map(|i| chain.ring_rows(i) * chain.ops[i].in_row_bytes())
        .sum();
    let staging = chain
        .ops
        .iter()
        .map(ChainOp::out_row_bytes)
        .max()
        .unwrap_or(0);
    rings + staging
}

/// Placement of one intermediate ring inside the workspace arena.
struct Ring {
    base: usize,
    rows: usize,
    row_bytes: usize,
}

/// Execution context shared by every row computation of one chain run:
/// the chain, its ring placements, the per-operator Flash bases, and the
/// chain-input pool address.
struct ChainExec<'a> {
    chain: &'a FusedChain,
    rings: Vec<Ring>,
    flash: &'a [usize],
    b_in: i64,
}

impl ChainExec<'_> {
    /// Loads `dst.len()` bytes at `offset` within row `row` of tensor
    /// `stage`: the pool for the chain input, the workspace ring
    /// otherwise.
    fn load(
        &self,
        m: &mut Machine,
        pool: &mut SegmentPool,
        stage: usize,
        row: usize,
        offset: usize,
        dst: &mut [u8],
    ) -> Result<(), PoolError> {
        if stage == 0 {
            let irb = self.chain.ops[0].in_row_bytes();
            pool.load(m, self.b_in + (row * irb + offset) as i64, dst)
        } else {
            let ring = &self.rings[stage - 1];
            let addr = ring.base + (row % ring.rows) * ring.row_bytes + offset;
            m.ram_load(addr, dst)?;
            Ok(())
        }
    }

    /// Computes one output row of operator `op_idx` (reading tensor
    /// `op_idx`, bit-exact against the reference operators) into `out`.
    fn compute_row(
        &self,
        m: &mut Machine,
        pool: &mut SegmentPool,
        op_idx: usize,
        row: usize,
        out: &mut [u8],
    ) -> Result<(), PoolError> {
        let w_base = self.flash[op_idx];
        match self.chain.ops[op_idx] {
            ChainOp::Pointwise(p) => {
                let mut w_tile = vec![0u8; p.c * p.k];
                m.flash_load(w_base, &mut w_tile)?;
                let mut a = vec![0u8; p.c];
                let mut acc = vec![0i32; p.k];
                for x in 0..p.w {
                    self.load(m, pool, op_idx, row, x * p.c, &mut a)?;
                    broadcast(m, &mut acc, 0);
                    dot_tile_u8(m, &a, &w_tile, p.k, &mut acc, true);
                    requant_row(m, &acc, p.rq, p.clamp, &mut out[x * p.k..(x + 1) * p.k]);
                }
            }
            ChainOp::Dense(p) => {
                let mut w_tile = vec![0u8; p.k * p.n];
                m.flash_load(w_base, &mut w_tile)?;
                let mut a = vec![0u8; p.k];
                let mut acc = vec![0i32; p.n];
                self.load(m, pool, op_idx, row, 0, &mut a)?;
                broadcast(m, &mut acc, 0);
                dot_tile_u8(m, &a, &w_tile, p.n, &mut acc, true);
                requant_row(m, &acc, p.rq, p.clamp, out);
            }
            ChainOp::Depthwise(p) => {
                let mut a = vec![0u8; p.c];
                let mut w_row = vec![0u8; p.c];
                let mut acc = vec![0i32; p.c];
                for q in 0..p.out_w() {
                    broadcast(m, &mut acc, 0);
                    let mut taps = 0u64;
                    for ri in 0..p.r {
                        let y = (row * p.stride + ri) as isize - p.pad as isize;
                        if y < 0 || y >= p.h as isize {
                            continue;
                        }
                        for si in 0..p.s {
                            let x = (q * p.stride + si) as isize - p.pad as isize;
                            if x < 0 || x >= p.w as isize {
                                continue;
                            }
                            self.load(m, pool, op_idx, y as usize, x as usize * p.c, &mut a)?;
                            m.flash_load(w_base + (ri * p.s + si) * p.c, &mut w_row)?;
                            for c in 0..p.c {
                                acc[c] += i32::from(a[c] as i8) * i32::from(w_row[c] as i8);
                            }
                            taps += 1;
                        }
                    }
                    // One batched charge per pixel (counter-identical to the
                    // per-tap charges the loop used to make).
                    m.charge_macs_batched(p.c as u64, taps, true);
                    requant_row(m, &acc, p.rq, p.clamp, &mut out[q * p.c..(q + 1) * p.c]);
                }
            }
            ChainOp::Conv2d(p) => {
                let mut a = vec![0u8; p.c];
                let mut w_tile = vec![0u8; p.c * p.k];
                let mut acc = vec![0i32; p.k];
                for q in 0..p.out_w() {
                    broadcast(m, &mut acc, 0);
                    for ri in 0..p.r {
                        let y = (row * p.stride + ri) as isize - p.pad as isize;
                        if y < 0 || y >= p.h as isize {
                            continue;
                        }
                        for si in 0..p.s {
                            let x = (q * p.stride + si) as isize - p.pad as isize;
                            if x < 0 || x >= p.w as isize {
                                continue;
                            }
                            self.load(m, pool, op_idx, y as usize, x as usize * p.c, &mut a)?;
                            m.flash_load(w_base + (ri * p.s + si) * p.c * p.k, &mut w_tile)?;
                            dot_tile_u8(m, &a, &w_tile, p.k, &mut acc, true);
                        }
                    }
                    requant_row(m, &acc, p.rq, p.clamp, &mut out[q * p.k..(q + 1) * p.k]);
                }
            }
        }
        m.charge_branches(1);
        Ok(())
    }
}

/// Runs the fused chain kernel.
///
/// * chain input at pool logical address `b_in`,
/// * chain output at pool logical address `b_out`,
/// * per-operator weights in Flash at `flash[i]`,
/// * line-buffer rings at RAM address `ws_base`
///   (≥ [`chain_workspace_bytes`] minus the staging row).
///
/// # Errors
///
/// Propagates pool violations (offset too tight) and memory errors.
///
/// # Panics
///
/// Panics when `flash` does not name one base address per operator.
pub fn run_fused_chain(
    m: &mut Machine,
    pool: &mut SegmentPool,
    chain: &FusedChain,
    b_in: i64,
    b_out: i64,
    flash: &[usize],
    ws_base: usize,
) -> Result<(), PoolError> {
    assert_eq!(
        flash.len(),
        chain.len(),
        "one flash base per chain operator"
    );
    let n = chain.len();
    let irb = chain.ops[0].in_row_bytes();
    let orb = chain.ops[n - 1].out_row_bytes();
    // Lay the rings out back to back in the workspace arena.
    let mut rings = Vec::with_capacity(n.saturating_sub(1));
    let mut base = ws_base;
    for i in 1..n {
        let rows = chain.ring_rows(i);
        let row_bytes = chain.ops[i].in_row_bytes();
        rings.push(Ring {
            base,
            rows,
            row_bytes,
        });
        base += rows * row_bytes;
    }
    let exec = ChainExec {
        chain,
        rings,
        flash,
        b_in,
    };
    let mut row_buf = vec![
        0u8;
        chain
            .ops
            .iter()
            .map(ChainOp::out_row_bytes)
            .max()
            .unwrap_or(0)
    ];
    for step in chain_schedule(chain) {
        match step {
            ChainStep::ProduceRow { stage, row } => {
                let rb = chain.ops[stage].in_row_bytes();
                exec.compute_row(m, pool, stage - 1, row, &mut row_buf[..rb])?;
                let ring = &exec.rings[stage - 1];
                let addr = ring.base + (row % ring.rows) * ring.row_bytes;
                m.ram_store(addr, &row_buf[..rb])?;
            }
            ChainStep::StoreOutRow(p) => {
                exec.compute_row(m, pool, n - 1, p, &mut row_buf[..orb])?;
                pool.store(m, &row_buf[..orb], b_out + (p * orb) as i64)?;
            }
            ChainStep::FreeInRows { from, to } => {
                pool.free(b_in + (from * irb) as i64, (to - from) * irb)?;
                m.charge_branches(1);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;
    use vmcu_tensor::{random, reference, Requant, Tensor};

    fn rq() -> Requant {
        Requant::from_scale(1.0 / 32.0, 0)
    }

    /// Weights for each op, deterministic per position.
    fn chain_weights(chain: &FusedChain) -> Vec<Tensor<i8>> {
        chain
            .ops()
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let seed = 90 + i as u64;
                match op {
                    ChainOp::Pointwise(p) => random::tensor_i8(&[p.c, p.k], seed),
                    ChainOp::Depthwise(p) => random::tensor_i8(&[p.r, p.s, p.c], seed),
                    ChainOp::Conv2d(p) => random::tensor_i8(&[p.r, p.s, p.c, p.k], seed),
                    ChainOp::Dense(p) => random::tensor_i8(&[p.k, p.n], seed),
                }
            })
            .collect()
    }

    /// Oracle: run the chain through the reference operators.
    fn chain_reference(
        chain: &FusedChain,
        weights: &[Tensor<i8>],
        input: &Tensor<i8>,
    ) -> Tensor<i8> {
        let mut cur = input.clone();
        for (op, w) in chain.ops().iter().zip(weights) {
            cur = match op {
                ChainOp::Pointwise(p) => reference::pointwise(&cur, w, None, 1, p.rq, p.clamp),
                ChainOp::Depthwise(p) => {
                    reference::depthwise(&cur, w, None, p.stride, p.pad, p.rq, p.clamp)
                }
                ChainOp::Conv2d(p) => {
                    reference::conv2d(&cur, w, None, p.stride, p.pad, p.rq, p.clamp)
                }
                ChainOp::Dense(p) => reference::dense(&cur, w, None, p.rq, p.clamp),
            };
        }
        cur
    }

    fn input_for(chain: &FusedChain, seed: u64) -> Tensor<i8> {
        let shape = match chain.ops()[0] {
            ChainOp::Pointwise(p) => vec![p.h, p.w, p.c],
            ChainOp::Depthwise(p) => vec![p.h, p.w, p.c],
            ChainOp::Conv2d(p) => vec![p.h, p.w, p.c],
            ChainOp::Dense(p) => vec![p.m, p.k],
        };
        random::tensor_i8(&shape, seed)
    }

    fn out_shape(chain: &FusedChain) -> Vec<usize> {
        match chain.ops().last().unwrap() {
            ChainOp::Pointwise(p) => vec![p.h, p.w, p.k],
            ChainOp::Depthwise(p) => vec![p.out_h(), p.out_w(), p.c],
            ChainOp::Conv2d(p) => vec![p.out_h(), p.out_w(), p.k],
            ChainOp::Dense(p) => vec![p.m, p.n],
        }
    }

    /// Runs the fused kernel with `extra` bytes of slack on the planned
    /// distance (0 = exactly the plan, -1 must clobber).
    fn run_case(chain: &FusedChain, extra: i64) -> Result<Tensor<i8>, PoolError> {
        let mut m = Machine::new(Device::stm32_f767zi());
        let input = input_for(chain, 70);
        let weights = chain_weights(chain);
        let flash: Vec<usize> = weights
            .iter()
            .map(|w| m.host_program_flash(&w.as_bytes()).unwrap())
            .collect();
        let d = chain_exec_distance(chain) + extra;
        let window = (chain.in_bytes() + d.max(0) as usize).max(chain.out_bytes());
        let ws = chain_workspace_bytes(chain);
        let mut pool = SegmentPool::new(&m, 0, window, chain.seg()).unwrap();
        assert!(window + ws < m.ram.capacity());
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_fused_chain(&mut m, &mut pool, chain, 0, -d, &flash, window)?;
        let out = pool.host_read(&m, -d, chain.out_bytes())?;
        Ok(Tensor::from_bytes(&out_shape(chain), &out))
    }

    fn expected(chain: &FusedChain) -> Tensor<i8> {
        chain_reference(chain, &chain_weights(chain), &input_for(chain, 70))
    }

    fn pw(h: usize, c: usize, k: usize, relu: bool) -> ChainOp {
        let mut p = PointwiseParams::new(h, h, c, k, rq());
        if relu {
            p.clamp = (0, 127);
        }
        ChainOp::Pointwise(p)
    }

    fn dw(h: usize, c: usize, rs: usize, stride: usize, relu: bool) -> ChainOp {
        let mut p = DepthwiseParams::new(h, h, c, rs, rs, stride, (rs - 1) / 2, rq());
        if relu {
            p.clamp = (0, 127);
        }
        ChainOp::Depthwise(p)
    }

    fn mbv2_like() -> FusedChain {
        // pw expand → dw → pw project: the inverted bottleneck expressed
        // as three separate layers.
        FusedChain::new(vec![
            pw(10, 8, 24, true),
            dw(10, 24, 3, 1, true),
            pw(10, 24, 8, false),
        ])
        .unwrap()
    }

    #[test]
    fn shape_mismatches_are_rejected_with_context() {
        let err = FusedChain::new(vec![pw(8, 4, 8, false), pw(8, 16, 4, false)]).unwrap_err();
        assert_eq!(err.op, 1);
        assert!(err.to_string().contains("rows, row bytes"));
    }

    #[test]
    fn single_op_chain_matches_reference() {
        let chain = FusedChain::new(vec![pw(6, 8, 4, false)]).unwrap();
        assert_eq!(run_case(&chain, 0).unwrap(), expected(&chain));
    }

    #[test]
    fn pw_pw_expansion_chain_matches_reference() {
        let chain = FusedChain::new(vec![pw(8, 4, 16, true), pw(8, 16, 4, false)]).unwrap();
        assert_eq!(run_case(&chain, 0).unwrap(), expected(&chain));
    }

    #[test]
    fn mbv2_like_chain_matches_reference() {
        let chain = mbv2_like();
        assert_eq!(run_case(&chain, 0).unwrap(), expected(&chain));
    }

    #[test]
    fn strided_depthwise_chain_matches_reference() {
        let chain = FusedChain::new(vec![
            pw(9, 4, 12, true),
            dw(9, 12, 3, 2, true),
            pw(5, 12, 6, false),
        ])
        .unwrap();
        assert_eq!(run_case(&chain, 0).unwrap(), expected(&chain));
    }

    #[test]
    fn conv2d_chain_matches_reference() {
        let mut conv = Conv2dParams::new(8, 8, 4, 6, 3, 3, 1, 1, rq());
        conv.clamp = (0, 127);
        let chain = FusedChain::new(vec![ChainOp::Conv2d(conv), pw(8, 6, 4, false)]).unwrap();
        assert_eq!(run_case(&chain, 0).unwrap(), expected(&chain));
    }

    #[test]
    fn dense_chain_matches_reference() {
        let chain = FusedChain::new(vec![
            ChainOp::Dense(FcParams::new(6, 8, 12, rq())),
            ChainOp::Dense(FcParams::new(6, 12, 4, rq())),
        ])
        .unwrap();
        assert_eq!(run_case(&chain, 0).unwrap(), expected(&chain));
    }

    #[test]
    fn exec_distance_is_tight_empirically() {
        for chain in [
            mbv2_like(),
            FusedChain::new(vec![pw(8, 4, 16, true), pw(8, 16, 4, false)]).unwrap(),
        ] {
            assert!(run_case(&chain, 0).is_ok());
            assert!(
                matches!(run_case(&chain, -1).unwrap_err(), PoolError::Clobber { .. }),
                "one byte short must clobber"
            );
        }
    }

    #[test]
    fn fused_chain_footprint_beats_materializing_intermediates() {
        // The paper's multi-layer claim: the fused chain never pays the
        // expanded intermediate, layer-at-a-time planning does.
        let chain = mbv2_like();
        let fused = chain_exec_footprint(&chain) + chain_workspace_bytes(&chain);
        let mid_bytes = chain.ops()[1].in_rows() * chain.ops()[1].in_row_bytes();
        assert!(
            fused < mid_bytes,
            "fused {fused} must undercut even one copy of the intermediate {mid_bytes}"
        );
    }

    #[test]
    fn schedule_produces_every_row_exactly_once() {
        let chain = mbv2_like();
        let heights = chain.heights();
        let n = chain.len();
        let mut seen = vec![std::collections::HashSet::new(); n];
        let mut stored = std::collections::HashSet::new();
        for step in chain_schedule(&chain) {
            match step {
                ChainStep::ProduceRow { stage, row } => {
                    assert!(seen[stage].insert(row), "row produced twice");
                }
                ChainStep::StoreOutRow(p) => {
                    assert!(stored.insert(p));
                }
                ChainStep::FreeInRows { .. } => {}
            }
        }
        for i in 1..n {
            assert_eq!(seen[i].len(), heights[i], "stage {i} row count");
        }
        assert_eq!(stored.len(), heights[n]);
    }

    #[test]
    fn trace_frees_the_whole_input() {
        let chain = mbv2_like();
        let freed: usize = chain_exec_trace(&chain)
            .iter()
            .map(|e| match e {
                ExecEvent::Free { len, .. } => *len,
                ExecEvent::Store { .. } => 0,
            })
            .sum();
        assert_eq!(freed, chain.in_bytes());
    }
}
