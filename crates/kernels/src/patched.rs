//! Patch-based front-stage execution — the MCUNetV2/Pex idea applied to
//! the segment pool.
//!
//! The memory bottleneck of CNN front stages is *spatial*: the first few
//! high-resolution layers carry activations larger than the whole device
//! SRAM, and no amount of pointer overlap or chain fusion helps when the
//! **input tensor itself** exceeds RAM. Patch-based execution splits the
//! front stage's output into a grid of spatial tiles and computes each
//! tile independently: the tile's receptive field is propagated backward
//! through the front layers ([`input_region`]) to find the input slab it
//! needs — the slab extends past the tile by a *halo* of rows/columns
//! that neighboring tiles recompute. Each per-patch layer slice runs
//! through the **existing** segment-aware kernels ([`crate::pointwise`],
//! [`crate::depthwise`], [`crate::conv2d`]) with the layer's implicit
//! zero padding materialized as explicit zeros in the slab (bit-exact:
//! a zero contribution is a zero contribution either way), so the peak
//! pool window shrinks from the full-tensor footprint to the largest
//! *slab* footprint.
//!
//! The price is honesty-charged recompute: halo rows are computed once
//! per neighboring patch, and every extra MAC runs on the simulated
//! machine — [`PatchedFront::halo_overhead`] reports the exact ratio the
//! planner's overhead cap (`vmcu_plan::patch`) constrains.

use crate::conv2d::{conv2d_exec_distance, conv2d_exec_footprint, run_conv2d};
use crate::depthwise::{depthwise_exec_distance, depthwise_exec_footprint, run_depthwise};
use crate::fused_chain::ChainOp;
use crate::pointwise::{pointwise_exec_distance, pointwise_exec_footprint, run_pointwise};
use std::fmt;
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;
use vmcu_tensor::Tensor;

/// Number of patches along each spatial axis of the front-stage output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatchGrid {
    /// Patch rows.
    pub gy: usize,
    /// Patch columns.
    pub gx: usize,
}

impl PatchGrid {
    /// Total number of patches.
    pub fn patches(&self) -> usize {
        self.gy * self.gx
    }
}

impl fmt::Display for PatchGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.gy, self.gx)
    }
}

/// A half-open 2-D region `[y0, y1) × [x0, x1)` in row/column
/// coordinates of one tensor. Coordinates may run past the tensor (or
/// below zero): out-of-range rows/columns stand for the layer's implicit
/// zero padding, which patch execution materializes as explicit zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First row.
    pub y0: i64,
    /// One past the last row.
    pub y1: i64,
    /// First column.
    pub x0: i64,
    /// One past the last column.
    pub x1: i64,
}

impl Region {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        (self.y1 - self.y0) as usize
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        (self.x1 - self.x0) as usize
    }

    /// The in-range part of the region for an `h × w` tensor.
    pub fn clamp(&self, h: usize, w: usize) -> Region {
        Region {
            y0: self.y0.max(0),
            y1: self.y1.min(h as i64),
            x0: self.x0.max(0),
            x1: self.x1.min(w as i64),
        }
    }
}

/// Spatial sliding-window geometry of an operator:
/// `(window rows, window cols, stride, pad)`. `None` for operators with
/// no spatial axes (fully-connected).
fn spatial_window(op: &ChainOp) -> Option<(usize, usize, usize, usize)> {
    match op {
        ChainOp::Pointwise(_) => Some((1, 1, 1, 0)),
        ChainOp::Depthwise(p) => Some((p.r, p.s, p.stride, p.pad)),
        ChainOp::Conv2d(p) => Some((p.r, p.s, p.stride, p.pad)),
        ChainOp::Dense(_) => None,
    }
}

/// Input `(rows, cols, channels)` of a spatial operator.
fn in_dims(op: &ChainOp) -> (usize, usize, usize) {
    match op {
        ChainOp::Pointwise(p) => (p.h, p.w, p.c),
        ChainOp::Depthwise(p) => (p.h, p.w, p.c),
        ChainOp::Conv2d(p) => (p.h, p.w, p.c),
        ChainOp::Dense(_) => unreachable!("patched fronts hold spatial operators only"),
    }
}

/// Output `(rows, cols, channels)` of a spatial operator.
fn out_dims(op: &ChainOp) -> (usize, usize, usize) {
    match op {
        ChainOp::Pointwise(p) => (p.h, p.w, p.k),
        ChainOp::Depthwise(p) => (p.out_h(), p.out_w(), p.c),
        ChainOp::Conv2d(p) => (p.out_h(), p.out_w(), p.k),
        ChainOp::Dense(_) => unreachable!("patched fronts hold spatial operators only"),
    }
}

/// The **halo computation**: the (unclamped) input region an operator
/// reads to produce the output region `out`. Coordinates below zero or
/// past the input extent stand for the operator's implicit zero padding.
///
/// # Examples
///
/// ```
/// use vmcu_kernels::patched::{input_region, Region};
/// use vmcu_kernels::{ChainOp, DepthwiseParams};
/// use vmcu_tensor::Requant;
///
/// // A 3×3 stride-2 pad-1 depthwise window: output rows [0, 12) read
/// // input rows [-1, 24) — one zero-halo row above, 23 real rows below.
/// let dw = ChainOp::Depthwise(DepthwiseParams::new(
///     48, 48, 8, 3, 3, 2, 1, Requant::identity(),
/// ));
/// let need = input_region(&dw, &Region { y0: 0, y1: 12, x0: 0, x1: 12 });
/// assert_eq!((need.y0, need.y1), (-1, 24));
/// assert_eq!((need.x0, need.x1), (-1, 24));
/// ```
///
/// # Panics
///
/// Panics for operators with no spatial axes (fully-connected).
pub fn input_region(op: &ChainOp, out: &Region) -> Region {
    let (r, s, stride, pad) = spatial_window(op).expect("spatial operator");
    let (r, s, stride, pad) = (r as i64, s as i64, stride as i64, pad as i64);
    Region {
        y0: out.y0 * stride - pad,
        y1: (out.y1 - 1) * stride + r - pad,
        x0: out.x0 * stride - pad,
        x1: (out.x1 - 1) * stride + s - pad,
    }
}

/// Slices an operator to a patch whose (zero-materialized) input slab
/// covers `rows × cols`: geometry shrinks, padding folds into the slab
/// (`pad = 0`), channels / stride / quantization stay untouched.
///
/// # Panics
///
/// Panics for operators with no spatial axes (fully-connected).
pub fn slice_to_slab(op: &ChainOp, rows: usize, cols: usize) -> ChainOp {
    match op {
        ChainOp::Pointwise(p) => {
            let mut s = *p;
            s.h = rows;
            s.w = cols;
            ChainOp::Pointwise(s)
        }
        ChainOp::Depthwise(p) => {
            let mut s = *p;
            s.h = rows;
            s.w = cols;
            s.pad = 0;
            ChainOp::Depthwise(s)
        }
        ChainOp::Conv2d(p) => {
            let mut s = *p;
            s.h = rows;
            s.w = cols;
            s.pad = 0;
            ChainOp::Conv2d(s)
        }
        ChainOp::Dense(_) => unreachable!("patched fronts hold spatial operators only"),
    }
}

/// MACs the segment kernels charge for `op` (implicit-padding taps
/// skipped, exactly as the kernel loops skip them). Sliced operators
/// have `pad = 0`, so every tap — including taps on materialized zero
/// halo — counts, which is precisely what executes.
pub fn op_macs(op: &ChainOp) -> u64 {
    match op {
        ChainOp::Pointwise(p) => p.macs(),
        ChainOp::Conv2d(p) => p.macs(),
        ChainOp::Dense(p) => p.macs(),
        ChainOp::Depthwise(p) => p.macs(),
    }
}

/// Error from patched-front construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The operator at `index` has no spatial axes to patch over.
    NotSpatial {
        /// Operator index within the front.
        index: usize,
        /// Operator kind.
        kind: &'static str,
    },
    /// Consecutive operators whose `(rows, cols, channels)` do not
    /// compose.
    ShapeMismatch {
        /// Index of the operator whose input does not match.
        index: usize,
        /// Dims the predecessor produces.
        produced: (usize, usize, usize),
        /// Dims this operator expects.
        expected: (usize, usize, usize),
    },
    /// More patches than output rows/columns along some axis.
    GridTooFine {
        /// The requested grid.
        grid: PatchGrid,
        /// Front-stage output rows.
        out_h: usize,
        /// Front-stage output columns.
        out_w: usize,
    },
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::NotSpatial { index, kind } => {
                write!(f, "front op {index} ({kind}) has no spatial axes to patch")
            }
            PatchError::ShapeMismatch {
                index,
                produced,
                expected,
            } => write!(
                f,
                "front op {index} expects {expected:?} (rows, cols, channels) \
                 but predecessor produces {produced:?}"
            ),
            PatchError::GridTooFine { grid, out_h, out_w } => write!(
                f,
                "grid {grid} exceeds the {out_h}x{out_w} front-stage output"
            ),
        }
    }
}

impl std::error::Error for PatchError {}

/// One per-patch stage: a sliced operator plus where its slab and
/// produced block sit in the original tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchStage {
    /// The sliced operator (padding folded into the slab).
    pub op: ChainOp,
    /// Input slab extent in the stage-input tensor (unclamped;
    /// out-of-range rows/columns are materialized zeros).
    pub slab: Region,
    /// Output region this stage produces, in the stage-output tensor
    /// (always in range).
    pub out: Region,
}

/// A validated front stage (a run of spatial operators from the graph
/// input) and the patch grid it executes under.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchedFront {
    ops: Vec<ChainOp>,
    grid: PatchGrid,
}

impl PatchedFront {
    /// Builds a patched front, validating that every operator is spatial,
    /// consecutive shapes compose, and the grid is no finer than the
    /// front-stage output.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError`] naming the offending operator or grid.
    ///
    /// # Panics
    ///
    /// Panics on an empty operator list.
    pub fn new(ops: Vec<ChainOp>, grid: PatchGrid) -> Result<Self, PatchError> {
        assert!(!ops.is_empty(), "a patched front needs at least one op");
        for (i, op) in ops.iter().enumerate() {
            if spatial_window(op).is_none() {
                return Err(PatchError::NotSpatial {
                    index: i,
                    kind: op.kind(),
                });
            }
        }
        for i in 1..ops.len() {
            let produced = out_dims(&ops[i - 1]);
            let expected = in_dims(&ops[i]);
            if produced != expected {
                return Err(PatchError::ShapeMismatch {
                    index: i,
                    produced,
                    expected,
                });
            }
        }
        let (out_h, out_w, _) = out_dims(ops.last().expect("non-empty front"));
        if grid.gy == 0 || grid.gx == 0 || grid.gy > out_h || grid.gx > out_w {
            return Err(PatchError::GridTooFine { grid, out_h, out_w });
        }
        Ok(Self { ops, grid })
    }

    /// The front operators in execution order.
    pub fn ops(&self) -> &[ChainOp] {
        &self.ops
    }

    /// The patch grid.
    pub fn grid(&self) -> PatchGrid {
        self.grid
    }

    /// Front input `(rows, cols, channels)`.
    pub fn in_dims(&self) -> (usize, usize, usize) {
        in_dims(&self.ops[0])
    }

    /// Front output `(rows, cols, channels)`.
    ///
    /// # Panics
    ///
    /// Panics if the front is empty — construction requires at least
    /// one op.
    pub fn out_dims(&self) -> (usize, usize, usize) {
        out_dims(self.ops.last().expect("non-empty front"))
    }

    /// Output tile of patch `(ty, tx)`; the tiles partition the
    /// front-stage output exactly.
    pub fn out_tile(&self, ty: usize, tx: usize) -> Region {
        let (oh, ow, _) = self.out_dims();
        Region {
            y0: (ty * oh / self.grid.gy) as i64,
            y1: ((ty + 1) * oh / self.grid.gy) as i64,
            x0: (tx * ow / self.grid.gx) as i64,
            x1: ((tx + 1) * ow / self.grid.gx) as i64,
        }
    }

    /// The per-stage slices of patch `(ty, tx)`: receptive-field regions
    /// are propagated backward from the output tile, then each operator
    /// is sliced to its (zero-materialized) input slab.
    pub fn patch_stages(&self, ty: usize, tx: usize) -> Vec<PatchStage> {
        let k = self.ops.len();
        // outs[i] = in-range region of tensor i+1 that stage i produces.
        let mut outs = vec![self.out_tile(ty, tx); k];
        for i in (0..k - 1).rev() {
            let raw = input_region(&self.ops[i + 1], &outs[i + 1]);
            let (h, w, _) = in_dims(&self.ops[i + 1]);
            outs[i] = raw.clamp(h, w);
        }
        (0..k)
            .map(|i| {
                let slab = input_region(&self.ops[i], &outs[i]);
                PatchStage {
                    op: slice_to_slab(&self.ops[i], slab.rows(), slab.cols()),
                    slab,
                    out: outs[i],
                }
            })
            .collect()
    }

    /// MACs of the unpatched front (what a whole-tensor execution
    /// charges).
    pub fn unpatched_macs(&self) -> u64 {
        self.ops.iter().map(op_macs).sum()
    }

    /// MACs the patched execution charges: every patch's sliced
    /// operators, halo rows and materialized-zero taps included.
    pub fn patched_macs(&self) -> u64 {
        let mut total = 0u64;
        for ty in 0..self.grid.gy {
            for tx in 0..self.grid.gx {
                total += self
                    .patch_stages(ty, tx)
                    .iter()
                    .map(|s| op_macs(&s.op))
                    .sum::<u64>();
            }
        }
        total
    }

    /// Fraction of extra MACs the halo recompute costs over the
    /// unpatched front (`0.04` = 4% more work).
    pub fn halo_overhead(&self) -> f64 {
        let unpatched = self.unpatched_macs();
        if unpatched == 0 {
            return 0.0;
        }
        self.patched_macs() as f64 / unpatched as f64 - 1.0
    }
}

/// Extracts region `r` of an `h × w × c` row-major byte tensor,
/// materializing zeros where `r` runs past the tensor.
fn extract_region(src: &[u8], h: usize, w: usize, c: usize, r: &Region) -> Vec<u8> {
    let (rh, rw) = (r.rows(), r.cols());
    let mut out = vec![0u8; rh * rw * c];
    let x_lo = r.x0.max(0);
    let x_hi = r.x1.min(w as i64);
    if x_lo >= x_hi {
        return out;
    }
    let span = (x_hi - x_lo) as usize * c;
    for dy in 0..rh {
        let sy = r.y0 + dy as i64;
        if sy < 0 || sy >= h as i64 {
            continue;
        }
        let src_off = (sy as usize * w + x_lo as usize) * c;
        let dst_off = (dy * rw + (x_lo - r.x0) as usize) * c;
        out[dst_off..dst_off + span].copy_from_slice(&src[src_off..src_off + span]);
    }
    out
}

/// Pastes a `bh × bw × c` block into a destination of row width `dw`
/// at `(y_off, x_off)`.
fn paste_block(
    dst: &mut [u8],
    dw: usize,
    c: usize,
    block: &[u8],
    (bh, bw): (usize, usize),
    (y_off, x_off): (usize, usize),
) {
    for by in 0..bh {
        let src_off = by * bw * c;
        let dst_off = ((y_off + by) * dw + x_off) * c;
        dst[dst_off..dst_off + bw * c].copy_from_slice(&block[src_off..src_off + bw * c]);
    }
}

/// Runs one sliced operator through its segment-aware kernel on a fresh
/// pool window (the same window the planner prices), returning the
/// produced bytes.
fn run_sliced(
    m: &mut Machine,
    op: &ChainOp,
    input: &[u8],
    w_base: usize,
) -> Result<Vec<u8>, PoolError> {
    match op {
        ChainOp::Pointwise(p) => {
            let d = pointwise_exec_distance(p);
            let mut pool = SegmentPool::new(m, 0, pointwise_exec_footprint(p), p.seg)?;
            pool.host_fill_live(m, 0, input)?;
            run_pointwise(m, &mut pool, p, 0, -d, w_base, None)?;
            pool.host_read(m, -d, p.out_bytes())
        }
        ChainOp::Depthwise(p) => {
            let d = depthwise_exec_distance(p);
            let mut pool = SegmentPool::new(m, 0, depthwise_exec_footprint(p), p.c)?;
            pool.host_fill_live(m, 0, input)?;
            run_depthwise(m, &mut pool, p, 0, -d, w_base, None)?;
            pool.host_read(m, -d, p.out_bytes())
        }
        ChainOp::Conv2d(p) => {
            let d = conv2d_exec_distance(p);
            let mut pool = SegmentPool::new(m, 0, conv2d_exec_footprint(p), p.seg)?;
            pool.host_fill_live(m, 0, input)?;
            run_conv2d(m, &mut pool, p, 0, -d, w_base, None)?;
            pool.host_read(m, -d, p.out_bytes())
        }
        ChainOp::Dense(_) => unreachable!("patched fronts hold spatial operators only"),
    }
}

/// Runs the patched front: each output tile's receptive field is staged
/// (zero halo included), pushed through the existing segment kernels
/// slice by slice, and stitched into the front output — bit-exact
/// against the unpatched execution, with every halo-recompute MAC
/// charged to the machine.
///
/// * model input as a host tensor (re-staged per patch, matching the
///   engine's layer-at-a-time convention),
/// * per-operator weights in Flash at `flash[i]` (programmed once,
///   shared by every patch).
///
/// # Errors
///
/// Propagates pool violations (planner/kernel disagreement) and memory
/// errors.
///
/// # Panics
///
/// Panics when `flash` does not name one base per operator or the input
/// shape does not match the front.
pub fn run_patched_front(
    m: &mut Machine,
    front: &PatchedFront,
    input: &Tensor<i8>,
    flash: &[usize],
) -> Result<Tensor<i8>, PoolError> {
    assert_eq!(
        flash.len(),
        front.ops.len(),
        "one flash base per front operator"
    );
    let (ih, iw, ic) = front.in_dims();
    assert_eq!(input.shape(), [ih, iw, ic], "front input shape mismatch");
    let (oh, ow, oc) = front.out_dims();
    let in_bytes = input.as_bytes();
    let mut out = vec![0u8; oh * ow * oc];
    for ty in 0..front.grid.gy {
        for tx in 0..front.grid.gx {
            let stages = front.patch_stages(ty, tx);
            let mut cur = extract_region(&in_bytes, ih, iw, ic, &stages[0].slab);
            for (i, stage) in stages.iter().enumerate() {
                let block = run_sliced(m, &stage.op, &cur, flash[i])?;
                let (_, _, c) = out_dims(&stage.op);
                match stages.get(i + 1) {
                    Some(next) => {
                        // Re-stage: the produced block becomes the
                        // in-range part of the next stage's slab, zeros
                        // fill the halo that crosses the tensor border.
                        let mut slab = vec![0u8; next.slab.rows() * next.slab.cols() * c];
                        paste_block(
                            &mut slab,
                            next.slab.cols(),
                            c,
                            &block,
                            (stage.out.rows(), stage.out.cols()),
                            (
                                (stage.out.y0 - next.slab.y0) as usize,
                                (stage.out.x0 - next.slab.x0) as usize,
                            ),
                        );
                        cur = slab;
                    }
                    None => paste_block(
                        &mut out,
                        ow,
                        oc,
                        &block,
                        (stage.out.rows(), stage.out.cols()),
                        (stage.out.y0 as usize, stage.out.x0 as usize),
                    ),
                }
            }
        }
    }
    Ok(Tensor::from_bytes(&[oh, ow, oc], &out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Conv2dParams, DepthwiseParams, FcParams, PointwiseParams};
    use vmcu_sim::Device;
    use vmcu_tensor::{random, reference, Requant};

    fn rq() -> Requant {
        Requant::from_scale(1.0 / 32.0, 0)
    }

    fn pw(h: usize, c: usize, k: usize, relu: bool) -> ChainOp {
        let mut p = PointwiseParams::new(h, h, c, k, rq());
        if relu {
            p.clamp = (0, 127);
        }
        ChainOp::Pointwise(p)
    }

    fn dw(h: usize, c: usize, rs: usize, stride: usize, relu: bool) -> ChainOp {
        let mut p = DepthwiseParams::new(h, h, c, rs, rs, stride, (rs - 1) / 2, rq());
        if relu {
            p.clamp = (0, 127);
        }
        ChainOp::Depthwise(p)
    }

    fn weights_for(ops: &[ChainOp]) -> Vec<Tensor<i8>> {
        ops.iter()
            .enumerate()
            .map(|(i, op)| {
                let seed = 140 + i as u64;
                match op {
                    ChainOp::Pointwise(p) => random::tensor_i8(&[p.c, p.k], seed),
                    ChainOp::Depthwise(p) => random::tensor_i8(&[p.r, p.s, p.c], seed),
                    ChainOp::Conv2d(p) => random::tensor_i8(&[p.r, p.s, p.c, p.k], seed),
                    ChainOp::Dense(p) => random::tensor_i8(&[p.k, p.n], seed),
                }
            })
            .collect()
    }

    /// Oracle: the unpatched front through the reference operators.
    fn front_reference(ops: &[ChainOp], weights: &[Tensor<i8>], input: &Tensor<i8>) -> Tensor<i8> {
        let mut cur = input.clone();
        for (op, w) in ops.iter().zip(weights) {
            cur = match op {
                ChainOp::Pointwise(p) => reference::pointwise(&cur, w, None, 1, p.rq, p.clamp),
                ChainOp::Depthwise(p) => {
                    reference::depthwise(&cur, w, None, p.stride, p.pad, p.rq, p.clamp)
                }
                ChainOp::Conv2d(p) => {
                    reference::conv2d(&cur, w, None, p.stride, p.pad, p.rq, p.clamp)
                }
                ChainOp::Dense(p) => reference::dense(&cur, w, None, p.rq, p.clamp),
            };
        }
        cur
    }

    fn run_case(ops: Vec<ChainOp>, grid: PatchGrid) -> (Tensor<i8>, Tensor<i8>, Machine) {
        let front = PatchedFront::new(ops, grid).unwrap();
        let (ih, iw, ic) = front.in_dims();
        let input = random::tensor_i8(&[ih, iw, ic], 77);
        let weights = weights_for(front.ops());
        let mut m = Machine::new(Device::stm32_f767zi());
        let flash: Vec<usize> = weights
            .iter()
            .map(|w| m.host_program_flash(&w.as_bytes()).unwrap())
            .collect();
        let got = run_patched_front(&mut m, &front, &input, &flash).unwrap();
        let want = front_reference(front.ops(), &weights, &input);
        (got, want, m)
    }

    #[test]
    fn single_pointwise_patch_matches_reference() {
        let (got, want, _) = run_case(vec![pw(12, 4, 8, false)], PatchGrid { gy: 3, gx: 2 });
        assert_eq!(got, want);
    }

    #[test]
    fn padded_depthwise_front_matches_reference_on_border_patches() {
        // pad 1 with a 2x2 grid: every patch touches two image borders,
        // exercising the materialized zero halo.
        let (got, want, _) = run_case(
            vec![pw(10, 4, 12, true), dw(10, 12, 3, 1, true)],
            PatchGrid { gy: 2, gx: 2 },
        );
        assert_eq!(got, want);
    }

    #[test]
    fn strided_downsampling_front_matches_reference() {
        // The MCUNetV2 shape: strided depthwise + pointwise, twice.
        let ops = vec![
            dw(16, 4, 3, 2, true),
            pw(8, 4, 8, true),
            dw(8, 8, 3, 2, true),
            pw(4, 8, 6, false),
        ];
        for grid in [
            PatchGrid { gy: 1, gx: 1 },
            PatchGrid { gy: 2, gx: 2 },
            PatchGrid { gy: 4, gx: 2 },
            PatchGrid { gy: 3, gx: 4 },
        ] {
            let (got, want, _) = run_case(ops.clone(), grid);
            assert_eq!(got, want, "grid {grid}");
        }
    }

    #[test]
    fn conv2d_front_matches_reference() {
        let mut conv = Conv2dParams::new(9, 9, 3, 6, 3, 3, 2, 1, rq());
        conv.clamp = (0, 127);
        let (got, want, _) = run_case(
            vec![ChainOp::Conv2d(conv), pw(5, 6, 4, false)],
            PatchGrid { gy: 2, gx: 3 },
        );
        assert_eq!(got, want);
    }

    #[test]
    fn large_window_depthwise_matches_reference() {
        // 7x7 window, pad 3: the halo spans several rows in every
        // direction and dominates small patches.
        let (got, want, _) = run_case(vec![dw(11, 3, 7, 1, false)], PatchGrid { gy: 3, gx: 3 });
        assert_eq!(got, want);
    }

    #[test]
    fn halo_recompute_macs_are_charged_to_the_machine() {
        let ops = vec![pw(12, 4, 8, true), dw(12, 8, 3, 1, true)];
        let fine = PatchedFront::new(ops.clone(), PatchGrid { gy: 4, gx: 4 }).unwrap();
        let (_, _, m_coarse) = run_case(ops.clone(), PatchGrid { gy: 1, gx: 1 });
        let (_, _, m_fine) = run_case(ops, PatchGrid { gy: 4, gx: 4 });
        assert!(
            m_fine.counters.macs > m_coarse.counters.macs,
            "finer grids must charge the halo recompute"
        );
        // The accounting surface and the machine agree exactly.
        assert_eq!(m_fine.counters.macs, fine.patched_macs());
        assert!(fine.halo_overhead() > 0.0);
    }

    #[test]
    fn tiles_partition_the_output() {
        let front =
            PatchedFront::new(vec![dw(10, 4, 3, 2, false)], PatchGrid { gy: 3, gx: 2 }).unwrap();
        let (oh, ow, _) = front.out_dims();
        let mut covered = vec![false; oh * ow];
        for ty in 0..3 {
            for tx in 0..2 {
                let t = front.out_tile(ty, tx);
                for y in t.y0..t.y1 {
                    for x in t.x0..t.x1 {
                        let cell = &mut covered[y as usize * ow + x as usize];
                        assert!(!*cell, "tile overlap at ({y}, {x})");
                        *cell = true;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "tiles must cover the output");
    }

    #[test]
    fn stages_compose_regions_consistently() {
        let front = PatchedFront::new(
            vec![
                dw(16, 4, 3, 2, true),
                pw(8, 4, 8, true),
                dw(8, 8, 3, 1, false),
            ],
            PatchGrid { gy: 2, gx: 2 },
        )
        .unwrap();
        for ty in 0..2 {
            for tx in 0..2 {
                let stages = front.patch_stages(ty, tx);
                for (i, stage) in stages.iter().enumerate() {
                    // Sliced output dims equal the produced region.
                    let (sh, sw, _) = out_dims(&stage.op);
                    assert_eq!((sh, sw), (stage.out.rows(), stage.out.cols()));
                    // The produced region is the in-range part of the
                    // next stage's slab (what the halo zeros wrap).
                    if let Some(next) = stages.get(i + 1) {
                        let (h, w, _) = out_dims(&front.ops()[i]);
                        assert_eq!(stage.out, next.slab.clamp(h, w));
                    }
                }
                // Last stage produces the tile exactly.
                assert_eq!(stages.last().unwrap().out, front.out_tile(ty, tx));
            }
        }
    }

    #[test]
    fn dense_ops_are_rejected() {
        let err = PatchedFront::new(
            vec![ChainOp::Dense(FcParams::new(4, 8, 8, rq()))],
            PatchGrid { gy: 1, gx: 1 },
        )
        .unwrap_err();
        assert!(matches!(err, PatchError::NotSpatial { index: 0, .. }));
        assert!(err.to_string().contains("no spatial axes"));
    }

    #[test]
    fn mismatched_shapes_are_rejected() {
        let err = PatchedFront::new(
            vec![pw(8, 4, 8, false), pw(8, 16, 4, false)],
            PatchGrid { gy: 1, gx: 1 },
        )
        .unwrap_err();
        assert!(matches!(err, PatchError::ShapeMismatch { index: 1, .. }));
    }

    #[test]
    fn too_fine_grids_are_rejected() {
        let err =
            PatchedFront::new(vec![dw(8, 4, 3, 2, false)], PatchGrid { gy: 5, gx: 1 }).unwrap_err();
        assert!(matches!(err, PatchError::GridTooFine { .. }));
    }

    #[test]
    fn grid_one_by_one_charges_no_halo() {
        // A padless front at 1x1 is the unpatched execution.
        let front =
            PatchedFront::new(vec![pw(6, 4, 8, false)], PatchGrid { gy: 1, gx: 1 }).unwrap();
        assert_eq!(front.patched_macs(), front.unpatched_macs());
        assert_eq!(front.halo_overhead(), 0.0);
    }
}
