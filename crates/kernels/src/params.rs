//! Kernel parameter blocks shared across implementations.
//!
//! Each struct fixes a layer's geometry plus quantization; both the
//! segment-aware vMCU kernels and the TinyEngine-policy baselines take the
//! same parameters, so comparisons are apples-to-apples.

use vmcu_solver::closed_form;
use vmcu_tensor::{Requant, NO_CLAMP};

/// Fully-connected layer `In[M,K] × W[K,N] → Out[M,N]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FcParams {
    /// Batch/rows.
    pub m: usize,
    /// Reduction size.
    pub k: usize,
    /// Output features.
    pub n: usize,
    /// Segment size in elements (the §5.3 rule picks `min(K, N)`).
    pub seg: usize,
    /// Requantization of the int32 accumulator.
    pub rq: Requant,
    /// Fused activation clamp.
    pub clamp: (i8, i8),
}

impl FcParams {
    /// Creates parameters with the §5.3 default segment size.
    pub fn new(m: usize, k: usize, n: usize, rq: Requant) -> Self {
        Self {
            m,
            k,
            n,
            seg: closed_form::fc_segment_elems(k as i64, n as i64) as usize,
            rq,
            clamp: NO_CLAMP,
        }
    }

    /// Input size in bytes.
    pub fn in_bytes(&self) -> usize {
        self.m * self.k
    }

    /// Output size in bytes.
    pub fn out_bytes(&self) -> usize {
        self.m * self.n
    }

    /// Weight size in bytes (resident in Flash).
    pub fn weight_bytes(&self) -> usize {
        self.k * self.n
    }

    /// MAC count.
    pub fn macs(&self) -> u64 {
        (self.m * self.k * self.n) as u64
    }
}

/// Pointwise (1×1) convolution `In[H,W,C] × W[C,K] → Out[H,W,K]`,
/// stride 1 (strided pointwise appears only inside fused modules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointwiseParams {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input channels.
    pub c: usize,
    /// Output channels.
    pub k: usize,
    /// Segment size in elements (§5.3: `min(C, K)`).
    pub seg: usize,
    /// Requantization.
    pub rq: Requant,
    /// Fused activation clamp.
    pub clamp: (i8, i8),
}

impl PointwiseParams {
    /// Creates parameters with the §5.3 default segment size.
    pub fn new(h: usize, w: usize, c: usize, k: usize, rq: Requant) -> Self {
        Self {
            h,
            w,
            c,
            k,
            seg: closed_form::conv_segment_elems(c as i64, k as i64) as usize,
            rq,
            clamp: NO_CLAMP,
        }
    }

    /// Spatial positions.
    pub fn pixels(&self) -> usize {
        self.h * self.w
    }

    /// Input size in bytes.
    pub fn in_bytes(&self) -> usize {
        self.pixels() * self.c
    }

    /// Output size in bytes.
    pub fn out_bytes(&self) -> usize {
        self.pixels() * self.k
    }

    /// MAC count.
    pub fn macs(&self) -> u64 {
        (self.pixels() * self.c * self.k) as u64
    }

    /// The equivalent fully-connected view (`M = H·W`).
    pub fn as_fc(&self) -> FcParams {
        FcParams {
            m: self.pixels(),
            k: self.c,
            n: self.k,
            seg: self.seg,
            rq: self.rq,
            clamp: self.clamp,
        }
    }
}

/// Dense 2D convolution `In[H,W,C] ⊛ W[R,S,C,K] → Out[P,Q,K]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conv2dParams {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input channels.
    pub c: usize,
    /// Output channels.
    pub k: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
    /// Stride (equal in both axes).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Segment size in elements (§5.3: `min(C, K)`).
    pub seg: usize,
    /// Requantization.
    pub rq: Requant,
    /// Fused activation clamp.
    pub clamp: (i8, i8),
}

impl Conv2dParams {
    /// Creates parameters with the §5.3 default segment size.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        h: usize,
        w: usize,
        c: usize,
        k: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: usize,
        rq: Requant,
    ) -> Self {
        Self {
            h,
            w,
            c,
            k,
            r,
            s,
            stride,
            pad,
            seg: closed_form::conv_segment_elems(c as i64, k as i64) as usize,
            rq,
            clamp: NO_CLAMP,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.s) / self.stride + 1
    }

    /// Input size in bytes.
    pub fn in_bytes(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Output size in bytes.
    pub fn out_bytes(&self) -> usize {
        self.out_h() * self.out_w() * self.k
    }

    /// MAC count (padding taps skipped, counted exactly).
    pub fn macs(&self) -> u64 {
        let mut taps = 0u64;
        for p in 0..self.out_h() {
            for r in 0..self.r {
                let y = (p * self.stride + r) as isize - self.pad as isize;
                if y < 0 || y >= self.h as isize {
                    continue;
                }
                for q in 0..self.out_w() {
                    for s in 0..self.s {
                        let x = (q * self.stride + s) as isize - self.pad as isize;
                        if x >= 0 && x < self.w as isize {
                            taps += 1;
                        }
                    }
                }
            }
        }
        taps * (self.c * self.k) as u64
    }
}

/// Depthwise convolution `In[H,W,C] ⊛ W[R,S,C] → Out[P,Q,C]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthwiseParams {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Channels.
    pub c: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
    /// Stride (equal in both axes).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Requantization.
    pub rq: Requant,
    /// Fused activation clamp.
    pub clamp: (i8, i8),
}

impl DepthwiseParams {
    /// Creates parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        h: usize,
        w: usize,
        c: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: usize,
        rq: Requant,
    ) -> Self {
        Self {
            h,
            w,
            c,
            r,
            s,
            stride,
            pad,
            rq,
            clamp: NO_CLAMP,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.s) / self.stride + 1
    }

    /// Input size in bytes.
    pub fn in_bytes(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Output size in bytes.
    pub fn out_bytes(&self) -> usize {
        self.out_h() * self.out_w() * self.c
    }

    /// MAC count (padding taps skipped, counted exactly — the same skip
    /// logic `run_depthwise` executes). Row and column tap validity are
    /// independent, so the count is separable.
    pub fn macs(&self) -> u64 {
        let valid = |out: usize, k: usize, dim: usize| -> u64 {
            let mut taps = 0u64;
            for o in 0..out {
                for i in 0..k {
                    let y = (o * self.stride + i) as isize - self.pad as isize;
                    if y >= 0 && y < dim as isize {
                        taps += 1;
                    }
                }
            }
            taps
        };
        valid(self.out_h(), self.r, self.h) * valid(self.out_w(), self.s, self.w) * self.c as u64
    }
}

/// Inverted bottleneck module (Figure 6 / Table 2): pointwise expand →
/// depthwise → pointwise project (+ residual add when shapes allow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IbParams {
    /// Input height/width (square images throughout Table 2).
    pub hw: usize,
    /// Input channels.
    pub c_in: usize,
    /// Expanded (middle) channels.
    pub c_mid: usize,
    /// Output channels.
    pub c_out: usize,
    /// Depthwise kernel size (R = S).
    pub rs: usize,
    /// Stride of the expand pointwise conv.
    pub s1: usize,
    /// Stride of the depthwise conv.
    pub s2: usize,
    /// Stride of the project pointwise conv (always 1 in Table 2).
    pub s3: usize,
    /// Requantization after each of the three convolutions.
    pub rq1: Requant,
    /// Requantization after the depthwise stage.
    pub rq2: Requant,
    /// Requantization after the projection stage.
    pub rq3: Requant,
    /// Activation clamp after the expand stage (ReLU6 in MobileNetV2).
    pub clamp1: (i8, i8),
    /// Activation clamp after the depthwise stage.
    pub clamp2: (i8, i8),
    /// Activation clamp after the projection stage (linear bottleneck).
    pub clamp3: (i8, i8),
}

impl IbParams {
    /// Creates a module with shared default quantization (suitable for the
    /// shape-driven experiments; tests override per-stage scales).
    pub fn new(
        hw: usize,
        c_in: usize,
        c_mid: usize,
        c_out: usize,
        rs: usize,
        strides: (usize, usize, usize),
    ) -> Self {
        let rq = Requant::from_scale(1.0 / 64.0, 0);
        Self {
            hw,
            c_in,
            c_mid,
            c_out,
            rs,
            s1: strides.0,
            s2: strides.1,
            s3: strides.2,
            rq1: rq,
            rq2: rq,
            rq3: rq,
            clamp1: NO_CLAMP,
            clamp2: NO_CLAMP,
            clamp3: NO_CLAMP,
        }
    }

    /// Depthwise padding (SAME-style).
    pub fn pad(&self) -> usize {
        (self.rs - 1) / 2
    }

    /// Spatial size after the expand conv.
    pub fn hw1(&self) -> usize {
        (self.hw - 1) / self.s1 + 1
    }

    /// Spatial size after the depthwise conv.
    pub fn hw2(&self) -> usize {
        (self.hw1() + 2 * self.pad() - self.rs) / self.s2 + 1
    }

    /// Output spatial size (s3 = 1 in all Table 2 modules).
    pub fn out_hw(&self) -> usize {
        (self.hw2() - 1) / self.s3 + 1
    }

    /// Whether the residual add applies (stride 1 throughout and matching
    /// channels, as in MobileNetV2).
    pub fn has_residual(&self) -> bool {
        self.s1 * self.s2 * self.s3 == 1 && self.c_in == self.c_out
    }

    /// Input tensor size in bytes.
    pub fn in_bytes(&self) -> usize {
        self.hw * self.hw * self.c_in
    }

    /// Expanded tensor (B) size in bytes.
    pub fn mid_bytes(&self) -> usize {
        self.hw1() * self.hw1() * self.c_mid
    }

    /// Post-depthwise tensor (C) size in bytes.
    pub fn dw_out_bytes(&self) -> usize {
        self.hw2() * self.hw2() * self.c_mid
    }

    /// Output tensor size in bytes.
    pub fn out_bytes(&self) -> usize {
        self.out_hw() * self.out_hw() * self.c_out
    }

    /// Segment size in elements (§5.3: min of in/out channel size).
    pub fn seg(&self) -> usize {
        self.c_in.min(self.c_out)
    }
}

/// Elementwise residual add `A[H,W,C] + B[H,W,C] → Out[H,W,C]` with int8
/// saturation. The two operands are staged consecutively in the pool
/// (`A` at the base, `B` right behind it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddParams {
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Channels (both operands and the output).
    pub c: usize,
    /// Segment size in elements.
    pub seg: usize,
}

impl AddParams {
    /// Creates parameters; the segment is one channel vector (§5.3's
    /// `min(C, K)` rule with `K = C`).
    pub fn new(h: usize, w: usize, c: usize) -> Self {
        Self { h, w, c, seg: c }
    }

    /// Bytes of one operand (and of the output).
    pub fn tensor_bytes(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Input size in bytes — both operands.
    pub fn in_bytes(&self) -> usize {
        2 * self.tensor_bytes()
    }

    /// Output size in bytes.
    pub fn out_bytes(&self) -> usize {
        self.tensor_bytes()
    }
}

/// Channel concatenation `A[H,W,Ca] ⧺ B[H,W,Cb] → Out[H,W,Ca+Cb]`.
/// Operands are staged consecutively (`A` then `B`); the output
/// interleaves their channel vectors per pixel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcatParams {
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Channels of the first operand.
    pub c_a: usize,
    /// Channels of the second operand.
    pub c_b: usize,
}

impl ConcatParams {
    /// Creates parameters.
    pub fn new(h: usize, w: usize, c_a: usize, c_b: usize) -> Self {
        Self { h, w, c_a, c_b }
    }

    /// Spatial positions.
    pub fn pixels(&self) -> usize {
        self.h * self.w
    }

    /// Bytes of the first operand.
    pub fn a_bytes(&self) -> usize {
        self.pixels() * self.c_a
    }

    /// Bytes of the second operand.
    pub fn b_bytes(&self) -> usize {
        self.pixels() * self.c_b
    }

    /// Input size in bytes — both operands.
    pub fn in_bytes(&self) -> usize {
        self.a_bytes() + self.b_bytes()
    }

    /// Output size in bytes.
    pub fn out_bytes(&self) -> usize {
        self.pixels() * (self.c_a + self.c_b)
    }

    /// Segment size in elements: one output pixel's channel vector.
    pub fn seg(&self) -> usize {
        self.c_a + self.c_b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_sizes() {
        let p = FcParams::new(4, 8, 6, Requant::identity());
        assert_eq!(p.seg, 6);
        assert_eq!(p.in_bytes(), 32);
        assert_eq!(p.out_bytes(), 24);
        assert_eq!(p.weight_bytes(), 48);
        assert_eq!(p.macs(), 192);
    }

    #[test]
    fn pointwise_matches_fc_view() {
        let p = PointwiseParams::new(8, 8, 16, 8, Requant::identity());
        assert_eq!(p.seg, 8);
        let fc = p.as_fc();
        assert_eq!(fc.m, 64);
        assert_eq!(fc.k, 16);
        assert_eq!(fc.n, 8);
        assert_eq!(p.macs(), fc.macs());
    }

    #[test]
    fn depthwise_macs_match_the_kernel_skip_logic() {
        // Brute-force the run_depthwise tap loop and compare with the
        // separable closed form, across strides and window sizes.
        for (h, r, stride, pad) in [(6, 3, 1, 1), (8, 3, 2, 1), (9, 7, 1, 3), (7, 5, 2, 2)] {
            let p = DepthwiseParams::new(h, h, 4, r, r, stride, pad, Requant::identity());
            let mut taps = 0u64;
            for pi in 0..p.out_h() {
                for qi in 0..p.out_w() {
                    for ri in 0..p.r {
                        let y = (pi * p.stride + ri) as isize - p.pad as isize;
                        if y < 0 || y >= p.h as isize {
                            continue;
                        }
                        for si in 0..p.s {
                            let x = (qi * p.stride + si) as isize - p.pad as isize;
                            if x >= 0 && x < p.w as isize {
                                taps += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(
                p.macs(),
                taps * p.c as u64,
                "h={h} r={r} s={stride} p={pad}"
            );
        }
    }

    #[test]
    fn conv2d_geometry_and_macs() {
        let p = Conv2dParams::new(8, 8, 4, 8, 3, 3, 1, 1, Requant::identity());
        assert_eq!(p.out_h(), 8);
        assert_eq!(p.out_w(), 8);
        // Interior pixels have 9 taps; corners 4; edges 6.
        let full: u64 = 8 * 8 * 9;
        let missing: u64 = 4 * 5 + (8 - 2) * 4 * 3;
        assert_eq!(p.macs(), (full - missing) * 32);
        let strided = Conv2dParams::new(8, 8, 4, 8, 3, 3, 2, 1, Requant::identity());
        assert_eq!(strided.out_h(), 4);
    }

    #[test]
    fn ib_s1_matches_paper_shapes() {
        // Table 2 S1: 20x20, 16 -> 48 -> 16, 3x3, strides 1,1,1.
        let ib = IbParams::new(20, 16, 48, 16, 3, (1, 1, 1));
        assert!(ib.has_residual());
        assert_eq!(ib.in_bytes(), 6400);
        assert_eq!(ib.mid_bytes(), 19200);
        assert_eq!(ib.out_bytes(), 6400);
        assert_eq!(ib.out_hw(), 20);
    }

    #[test]
    fn ib_b1_strided_shapes() {
        // Table 2 B1: 176x176, 3 -> 16 -> 8, 3x3, strides 2,1,1.
        let ib = IbParams::new(176, 3, 16, 8, 3, (2, 1, 1));
        assert!(!ib.has_residual());
        assert_eq!(ib.hw1(), 88);
        assert_eq!(ib.hw2(), 88);
        assert_eq!(ib.in_bytes(), 92_928);
        assert_eq!(ib.out_bytes(), 88 * 88 * 8);
    }

    #[test]
    fn ib_b2_dw_stride() {
        // Table 2 B2: 88x88, 8 -> 24 -> 16, 7x7, strides 1,2,1.
        let ib = IbParams::new(88, 8, 24, 16, 7, (1, 2, 1));
        assert_eq!(ib.pad(), 3);
        assert_eq!(ib.hw1(), 88);
        assert_eq!(ib.hw2(), 44);
        assert_eq!(ib.mid_bytes(), 88 * 88 * 24); // 185,856 = paper's 185.9 KB
        assert_eq!(ib.out_bytes(), 44 * 44 * 16);
    }
}
