//! TinyEngine-policy baseline kernels (§2.3, §7.1).
//!
//! The paper's main comparator. Its *policies*, faithfully reproduced:
//!
//! * tensor-level memory management — input and output live in disjoint
//!   RAM regions (no partial overlap, no circular pool, no modulo);
//! * im2col pre-processing for convolutions, **including** pointwise
//!   convolutions where it is a pure copy (§7.2 attributes extra RAM
//!   traffic and energy to this);
//! * inner loops unrolled to a fixed depth (cost model's partial-unroll
//!   stall penalty) rather than vMCU's full unrolling;
//! * in-place depthwise convolution (the one overlap tensor-level
//!   management can do), using a small ring of original input rows;
//! * in-place residual add.
//!
//! Functional results are bit-exact with the reference operators — the
//! baselines differ from vMCU only in memory layout and cost.

use crate::intrinsics::{broadcast, dot_tile_u8, requant_row};
use crate::params::{DepthwiseParams, IbParams, PointwiseParams};
use vmcu_sim::{Machine, MemError};
use vmcu_tensor::quant::sat8;

/// Output channels computed per inner-loop pass by the baseline GEMM
/// (CMSIS-NN processes 2 columns at a time; §8.1).
pub const TE_COL_TILE: usize = 2;

/// Disjoint RAM layout of a TinyEngine pointwise convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TePointwiseLayout {
    /// Input tensor base.
    pub input: usize,
    /// Output tensor base.
    pub output: usize,
    /// im2col staging buffer base (one image row: `W·C` bytes).
    pub im2col: usize,
}

/// Runs the TinyEngine-style pointwise convolution (stride supported for
/// fused-module use).
///
/// # Errors
///
/// Returns memory errors on layout mistakes.
///
/// # Panics
///
/// Panics if `bias` has the wrong length.
pub fn run_pointwise_te(
    m: &mut Machine,
    p: &PointwiseParams,
    stride: usize,
    layout: TePointwiseLayout,
    w_base: usize,
    bias: Option<&[i32]>,
) -> Result<(), MemError> {
    if let Some(b) = bias {
        assert_eq!(b.len(), p.k, "bias length mismatch");
    }
    let (h_out, w_out) = ((p.h - 1) / stride + 1, (p.w - 1) / stride + 1);
    let mut a_reg = vec![0u8; p.c];
    let mut w_full = vec![0u8; p.c * p.k];
    let mut acc = [0i32; TE_COL_TILE];
    let mut out_reg = [0u8; TE_COL_TILE];
    for pi in 0..h_out {
        // im2col: stage the (subsampled) input row even though a pointwise
        // conv does not need it — TinyEngine does not bypass this step.
        for qi in 0..w_out {
            m.ram_copy(
                layout.input + (pi * stride * p.w + qi * stride) * p.c,
                layout.im2col + qi * p.c,
                p.c,
            )?;
        }
        for qi in 0..w_out {
            // Whole weight matrix streamed from Flash per pixel.
            m.flash_load(w_base, &mut w_full)?;
            let mut k0 = 0;
            while k0 < p.k {
                let kw = TE_COL_TILE.min(p.k - k0);
                // CMSIS-NN/TinyEngine templates compute 2 output channels
                // at a time (§8.1) and re-read the input row per column
                // pair — the extra RAM traffic §7.2 attributes the energy
                // gap to.
                m.ram_load(layout.im2col + qi * p.c, &mut a_reg)?;
                broadcast(m, &mut acc[..kw], 0);
                if let Some(b) = bias {
                    for (a, &bv) in acc[..kw].iter_mut().zip(&b[k0..k0 + kw]) {
                        *a = bv;
                    }
                }
                // Fixed-depth unrolling: the stall penalty applies.
                dot_tile_u8(m, &a_reg, &w_full[k0..], p.k, &mut acc[..kw], false);
                requant_row(m, &acc[..kw], p.rq, p.clamp, &mut out_reg[..kw]);
                m.ram_store(layout.output + (pi * w_out + qi) * p.k + k0, &out_reg[..kw])?;
                m.charge_branches(1);
                k0 += kw;
            }
        }
        m.charge_branches(1);
    }
    Ok(())
}

/// Runs the TinyEngine-style in-place depthwise convolution: the output
/// overwrites the input buffer at `buf`; a ring at `ring` keeps the
/// original values of the last `R` input rows.
///
/// # Errors
///
/// Returns memory errors on layout mistakes.
pub fn run_depthwise_te_inplace(
    m: &mut Machine,
    p: &DepthwiseParams,
    buf: usize,
    ring: usize,
    w_base: usize,
) -> Result<(), MemError> {
    let (h_out, w_out) = (p.out_h(), p.out_w());
    let row_bytes = p.w * p.c;
    let mut a_reg = vec![0u8; p.c];
    let mut w_reg = vec![0u8; p.c];
    let mut acc = vec![0i32; p.c];
    let mut out_reg = vec![0u8; p.c];
    let ring_rows = p.r.min(p.h); // the ring never exceeds the image height
    let mut copied_upto = 0usize; // rows [0, copied_upto) staged in the ring
    for pi in 0..h_out {
        // Stage the original rows this output row's window needs.
        let hi_row = (pi * p.stride + p.r - 1).saturating_sub(p.pad).min(p.h - 1);
        while copied_upto <= hi_row {
            m.ram_copy(
                buf + copied_upto * row_bytes,
                ring + (copied_upto % ring_rows) * row_bytes,
                row_bytes,
            )?;
            copied_upto += 1;
        }
        for qi in 0..w_out {
            broadcast(m, &mut acc, 0);
            let mut taps = 0u64;
            for ri in 0..p.r {
                let y = (pi * p.stride + ri) as isize - p.pad as isize;
                if y < 0 || y >= p.h as isize {
                    continue;
                }
                for si in 0..p.s {
                    let x = (qi * p.stride + si) as isize - p.pad as isize;
                    if x < 0 || x >= p.w as isize {
                        continue;
                    }
                    m.ram_load(
                        ring + ((y as usize % ring_rows) * p.w + x as usize) * p.c,
                        &mut a_reg,
                    )?;
                    m.flash_load(w_base + (ri * p.s + si) * p.c, &mut w_reg)?;
                    for c in 0..p.c {
                        acc[c] += i32::from(a_reg[c] as i8) * i32::from(w_reg[c] as i8);
                    }
                    taps += 1;
                }
            }
            // Counter-identical to the per-tap charges this loop used to
            // make (tiles × mac_cost, never a merged rounding).
            m.charge_macs_batched(p.c as u64, taps, false);
            requant_row(m, &acc, p.rq, p.clamp, &mut out_reg);
            m.ram_store(buf + (pi * w_out + qi) * p.c, &out_reg)?;
            m.charge_branches(1);
        }
        m.charge_branches(1);
    }
    Ok(())
}

/// In-place residual add: `d[i] = sat8(d[i] + a[i])` over `len` bytes.
///
/// # Errors
///
/// Returns memory errors on layout mistakes.
pub fn run_add_te_inplace(
    m: &mut Machine,
    a_base: usize,
    d_base: usize,
    len: usize,
) -> Result<(), MemError> {
    let chunk = 64;
    let mut a_reg = vec![0u8; chunk];
    let mut d_reg = vec![0u8; chunk];
    let mut off = 0;
    while off < len {
        let n = chunk.min(len - off);
        m.ram_load(a_base + off, &mut a_reg[..n])?;
        m.ram_load(d_base + off, &mut d_reg[..n])?;
        for i in 0..n {
            d_reg[i] = sat8(i64::from(d_reg[i] as i8) + i64::from(a_reg[i] as i8)) as u8;
        }
        m.charge_cycles(n as u64);
        m.ram_store(d_base + off, &d_reg[..n])?;
        m.charge_branches(1);
        off += n;
    }
    Ok(())
}

/// Disjoint RAM layout of a TinyEngine inverted-bottleneck module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TeIbLayout {
    /// Input tensor `A` base.
    pub a: usize,
    /// Expanded tensor `B` base (depthwise runs in place here).
    pub b: usize,
    /// Projected tensor `D` base (the residual add runs in place here).
    pub d: usize,
    /// Depthwise original-row ring base (`R` rows of `B`).
    pub ring: usize,
    /// im2col staging row base.
    pub im2col: usize,
}

impl TeIbLayout {
    /// Packs the module's buffers sequentially from `base`, returning the
    /// layout and one-past-the-end.
    pub fn packed(p: &IbParams, base: usize) -> (Self, usize) {
        let a = base;
        let b = a + p.in_bytes();
        let d = b + p.mid_bytes();
        let ring = d + p.out_bytes();
        let im2col = ring + p.rs.min(p.hw1()) * p.hw1() * p.c_mid;
        let end = im2col + p.hw * p.c_in.max(p.c_mid);
        (
            Self {
                a,
                b,
                d,
                ring,
                im2col,
            },
            end,
        )
    }
}

/// Runs a full inverted-bottleneck module with TinyEngine policies:
/// pw-expand into `B`, depthwise in place over `B`, pw-project into `D`,
/// residual add in place over `D`. The result lives at `layout.d`.
///
/// # Errors
///
/// Returns memory errors on layout mistakes.
pub fn run_ib_te(
    m: &mut Machine,
    p: &IbParams,
    layout: TeIbLayout,
    w1_base: usize,
    wdw_base: usize,
    w2_base: usize,
) -> Result<(), MemError> {
    // Expand: A[H,H,Cin] -> B[H1,H1,Cmid].
    let pw1 = PointwiseParams {
        h: p.hw,
        w: p.hw,
        c: p.c_in,
        k: p.c_mid,
        seg: p.c_in.min(p.c_mid),
        rq: p.rq1,
        clamp: p.clamp1,
    };
    run_pointwise_te(
        m,
        &pw1,
        p.s1,
        TePointwiseLayout {
            input: layout.a,
            output: layout.b,
            im2col: layout.im2col,
        },
        w1_base,
        None,
    )?;
    // Depthwise in place over B.
    let dw = DepthwiseParams {
        h: p.hw1(),
        w: p.hw1(),
        c: p.c_mid,
        r: p.rs,
        s: p.rs,
        stride: p.s2,
        pad: p.pad(),
        rq: p.rq2,
        clamp: p.clamp2,
    };
    run_depthwise_te_inplace(m, &dw, layout.b, layout.ring, wdw_base)?;
    // Project: C[H2,H2,Cmid] (in the B buffer) -> D.
    let pw2 = PointwiseParams {
        h: p.hw2(),
        w: p.hw2(),
        c: p.c_mid,
        k: p.c_out,
        seg: p.c_mid.min(p.c_out),
        rq: p.rq3,
        clamp: p.clamp3,
    };
    run_pointwise_te(
        m,
        &pw2,
        p.s3,
        TePointwiseLayout {
            input: layout.b,
            output: layout.d,
            im2col: layout.im2col,
        },
        w2_base,
        None,
    )?;
    if p.has_residual() {
        run_add_te_inplace(m, layout.a, layout.d, p.out_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused_ib::ib_reference;
    use vmcu_sim::Device;
    use vmcu_tensor::{random, reference, Requant, Tensor};

    #[test]
    fn te_pointwise_matches_reference() {
        let p = PointwiseParams::new(6, 6, 8, 4, Requant::from_scale(1.0 / 32.0, 0));
        let mut m = Machine::new(Device::stm32_f767zi());
        let input = random::tensor_i8(&[p.h, p.w, p.c], 1);
        let weight = random::tensor_i8(&[p.c, p.k], 2);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let layout = TePointwiseLayout {
            input: 0,
            output: p.in_bytes(),
            im2col: p.in_bytes() + p.out_bytes(),
        };
        m.host_write_ram(0, &input.as_bytes()).unwrap();
        run_pointwise_te(&mut m, &p, 1, layout, w_base, None).unwrap();
        let out = m.host_read_ram(layout.output, p.out_bytes()).unwrap();
        let out = Tensor::from_bytes(&[p.h, p.w, p.k], &out);
        assert_eq!(
            out,
            reference::pointwise(&input, &weight, None, 1, p.rq, p.clamp)
        );
    }

    #[test]
    fn te_pointwise_pays_im2col_traffic() {
        let p = PointwiseParams::new(8, 8, 8, 8, Requant::identity());
        let mut m = Machine::new(Device::stm32_f767zi());
        let weight = random::tensor_i8(&[p.c, p.k], 2);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let layout = TePointwiseLayout {
            input: 0,
            output: p.in_bytes(),
            im2col: p.in_bytes() + p.out_bytes(),
        };
        run_pointwise_te(&mut m, &p, 1, layout, w_base, None).unwrap();
        // im2col copies the input once (read+write) on top of the GEMM's
        // own reads.
        assert!(m.counters.ram_write_bytes >= (p.in_bytes() + p.out_bytes()) as u64);
    }

    #[test]
    fn te_depthwise_inplace_matches_reference() {
        let p = DepthwiseParams::new(7, 7, 6, 3, 3, 1, 1, Requant::from_scale(1.0 / 16.0, 0));
        let mut m = Machine::new(Device::stm32_f767zi());
        let input = random::tensor_i8(&[p.h, p.w, p.c], 3);
        let weight = random::tensor_i8(&[p.r, p.s, p.c], 4);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        m.host_write_ram(0, &input.as_bytes()).unwrap();
        let ring = p.in_bytes();
        run_depthwise_te_inplace(&mut m, &p, 0, ring, w_base).unwrap();
        let out = m.host_read_ram(0, p.out_bytes()).unwrap();
        let out = Tensor::from_bytes(&[p.out_h(), p.out_w(), p.c], &out);
        assert_eq!(
            out,
            reference::depthwise(&input, &weight, None, p.stride, p.pad, p.rq, p.clamp)
        );
    }

    #[test]
    fn te_depthwise_inplace_strided_matches_reference() {
        let p = DepthwiseParams::new(8, 8, 4, 5, 5, 2, 2, Requant::from_scale(1.0 / 64.0, 1));
        let mut m = Machine::new(Device::stm32_f767zi());
        let input = random::tensor_i8(&[p.h, p.w, p.c], 5);
        let weight = random::tensor_i8(&[p.r, p.s, p.c], 6);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        m.host_write_ram(0, &input.as_bytes()).unwrap();
        run_depthwise_te_inplace(&mut m, &p, 0, p.in_bytes(), w_base).unwrap();
        let out = m.host_read_ram(0, p.out_bytes()).unwrap();
        let out = Tensor::from_bytes(&[p.out_h(), p.out_w(), p.c], &out);
        assert_eq!(
            out,
            reference::depthwise(&input, &weight, None, p.stride, p.pad, p.rq, p.clamp)
        );
    }

    #[test]
    fn te_ib_module_matches_fused_reference() {
        let mut p = IbParams::new(8, 4, 12, 4, 3, (1, 1, 1));
        p.rq1 = Requant::from_scale(1.0 / 32.0, 0);
        p.clamp1 = (0, 127);
        let mut m = Machine::new(Device::stm32_f767zi());
        let input = random::tensor_i8(&[p.hw, p.hw, p.c_in], 70);
        let w1 = random::tensor_i8(&[p.c_in, p.c_mid], 71);
        let wdw = random::tensor_i8(&[p.rs, p.rs, p.c_mid], 72);
        let w2 = random::tensor_i8(&[p.c_mid, p.c_out], 73);
        let w1b = m.host_program_flash(&w1.as_bytes()).unwrap();
        let wdwb = m.host_program_flash(&wdw.as_bytes()).unwrap();
        let w2b = m.host_program_flash(&w2.as_bytes()).unwrap();
        let (layout, _end) = TeIbLayout::packed(&p, 0);
        m.host_write_ram(layout.a, &input.as_bytes()).unwrap();
        run_ib_te(&mut m, &p, layout, w1b, wdwb, w2b).unwrap();
        let out = m.host_read_ram(layout.d, p.out_bytes()).unwrap();
        let out = Tensor::from_bytes(&[p.hw2(), p.hw2(), p.c_out], &out);
        assert_eq!(out, ib_reference(&p, &input, &w1, &wdw, &w2));
    }

    #[test]
    fn te_ib_strided_matches_reference() {
        let p = IbParams::new(9, 3, 8, 6, 3, (2, 1, 1));
        let mut m = Machine::new(Device::stm32_f767zi());
        let input = random::tensor_i8(&[p.hw, p.hw, p.c_in], 70);
        let w1 = random::tensor_i8(&[p.c_in, p.c_mid], 71);
        let wdw = random::tensor_i8(&[p.rs, p.rs, p.c_mid], 72);
        let w2 = random::tensor_i8(&[p.c_mid, p.c_out], 73);
        let w1b = m.host_program_flash(&w1.as_bytes()).unwrap();
        let wdwb = m.host_program_flash(&wdw.as_bytes()).unwrap();
        let w2b = m.host_program_flash(&w2.as_bytes()).unwrap();
        let (layout, _) = TeIbLayout::packed(&p, 0);
        m.host_write_ram(layout.a, &input.as_bytes()).unwrap();
        run_ib_te(&mut m, &p, layout, w1b, wdwb, w2b).unwrap();
        let out = m.host_read_ram(layout.d, p.out_bytes()).unwrap();
        let out = Tensor::from_bytes(&[p.hw2(), p.hw2(), p.c_out], &out);
        assert_eq!(out, ib_reference(&p, &input, &w1, &wdw, &w2));
    }

    #[test]
    fn add_saturates_in_place() {
        let mut m = Machine::new(Device::stm32_f767zi());
        m.host_write_ram(0, &[100u8, 0x9C /* -100 */, 1]).unwrap(); // a
        m.host_write_ram(16, &[100u8, 0x9C, 2]).unwrap(); // d
        run_add_te_inplace(&mut m, 0, 16, 3).unwrap();
        let out = m.host_read_ram(16, 3).unwrap();
        assert_eq!(out[0] as i8, 127);
        assert_eq!(out[1] as i8, -128);
        assert_eq!(out[2] as i8, 3);
    }
}
