//! The vMCU intrinsic layer (§6.1), executing on the simulated machine.
//!
//! The paper exposes seven intrinsics to kernel developers; their data
//! movement (`RAMLoad`, `FlashLoad`, `RAMStore`, `RAMFree`) maps to
//! [`vmcu_pool::SegmentPool`] / [`vmcu_sim::Machine`] operations. This
//! module implements the compute intrinsics:
//!
//! * [`dot_tile`] — the `Dot` fixed-size int8 matmul micro-kernel
//!   (`SXTB16` + `SMLAD` on ARM, 2 MACs per instruction);
//! * [`broadcast`] — register splat (`PKHBT` on ARM);
//! * [`requant_row`] — the int32→int8 epilogue shared with the reference
//!   operators, charged at a few cycles per element.

use vmcu_sim::Machine;
use vmcu_tensor::Requant;

/// Cycles per element the requantization epilogue costs on the original
/// evaluation platforms (M4/M7). The live cost now comes from the device
/// model ([`vmcu_sim::CostModel::requant_cycles_x100`], which kernels
/// charge through [`Machine::charge_requant`]); this constant remains as
/// the documented M4/M7 value that model reproduces.
pub const REQUANT_CYCLES_PER_ELEM: u64 = 3;

/// `Dot`: `acc[n] += Σ_k a[k] · b[k·b_stride + n]` for `n < acc.len()`,
/// `k < a.len()` — an `a.len()`-deep reduction into `acc.len()` lanes,
/// charged as packed-SIMD MACs.
///
/// `fully_unrolled` selects the pipeline-stall model: vMCU kernels fully
/// unroll their innermost reduction loops, the TinyEngine baseline unrolls
/// to a fixed depth (§7.2).
///
/// # Panics
///
/// Panics if `b` is too short for the access pattern.
pub fn dot_tile(
    m: &mut Machine,
    a: &[i8],
    b: &[i8],
    b_stride: usize,
    acc: &mut [i32],
    fully_unrolled: bool,
) {
    let ki = a.len();
    let ni = acc.len();
    if ki == 0 || ni == 0 {
        return;
    }
    assert!(
        (ki - 1) * b_stride + ni <= b.len(),
        "weight tile too small: need {} have {}",
        (ki - 1) * b_stride + ni,
        b.len()
    );
    for (k, &av) in a.iter().enumerate() {
        let row = &b[k * b_stride..k * b_stride + ni];
        for (n, accv) in acc.iter_mut().enumerate() {
            *accv += i32::from(av) * i32::from(row[n]);
        }
    }
    m.charge_macs((ki * ni) as u64, fully_unrolled);
}

/// Functional core of the byte-slice `Dot` variants: accumulates
/// `acc[n] += Σ_k a[k] · b[k·b_stride + n]` reading int8 values straight
/// from `u8` storage. The reduction is register-tiled four rows deep
/// (`chunks_exact`), keeping each accumulator lane's addition order
/// identical to the scalar `dot_tile` loop — bit-exact, just without the
/// per-tile `Vec` conversions and per-element bounds checks the naive
/// loop pays on the host.
fn dot_accumulate_u8(a: &[u8], b: &[u8], b_stride: usize, acc: &mut [i32]) {
    let ki = a.len();
    let ni = acc.len();
    assert!(
        (ki - 1) * b_stride + ni <= b.len(),
        "weight tile too small: need {} have {}",
        (ki - 1) * b_stride + ni,
        b.len()
    );
    let mut chunks = a.chunks_exact(4);
    let mut k = 0;
    for ch in &mut chunks {
        let a0 = i32::from(ch[0] as i8);
        let a1 = i32::from(ch[1] as i8);
        let a2 = i32::from(ch[2] as i8);
        let a3 = i32::from(ch[3] as i8);
        let r0 = &b[k * b_stride..k * b_stride + ni];
        let r1 = &b[(k + 1) * b_stride..(k + 1) * b_stride + ni];
        let r2 = &b[(k + 2) * b_stride..(k + 2) * b_stride + ni];
        let r3 = &b[(k + 3) * b_stride..(k + 3) * b_stride + ni];
        for (n, accv) in acc.iter_mut().enumerate() {
            // In-order per-lane adds: identical arithmetic to the scalar
            // k-loop, including any intermediate saturation behaviour.
            let mut s = *accv;
            s += a0 * i32::from(r0[n] as i8);
            s += a1 * i32::from(r1[n] as i8);
            s += a2 * i32::from(r2[n] as i8);
            s += a3 * i32::from(r3[n] as i8);
            *accv = s;
        }
        k += 4;
    }
    for &av in chunks.remainder() {
        let av = i32::from(av as i8);
        let row = &b[k * b_stride..k * b_stride + ni];
        for (n, accv) in acc.iter_mut().enumerate() {
            *accv += av * i32::from(row[n] as i8);
        }
        k += 1;
    }
}

/// `Dot` over raw `u8` register buffers (the kernels' staging format):
/// identical semantics and charging to [`dot_tile`], without the
/// `Vec<i8>` conversion copies the hot loops used to pay per tile.
pub fn dot_tile_u8(
    m: &mut Machine,
    a: &[u8],
    b: &[u8],
    b_stride: usize,
    acc: &mut [i32],
    fully_unrolled: bool,
) {
    let (ki, ni) = (a.len(), acc.len());
    if ki == 0 || ni == 0 {
        return;
    }
    dot_accumulate_u8(a, b, b_stride, acc);
    m.charge_macs((ki * ni) as u64, fully_unrolled);
}

/// Lane-blocked `Dot`: the same bit-exact accumulation as
/// [`dot_tile_u8`], charged at `lanes_used` SIMD lanes per instruction
/// ([`Machine::charge_macs_lanes`]). This is the matmul micro-kernel of
/// the im2col lowering — `lanes_used = 1` prices the scalar lowering a
/// capability-unaware compiler emits, `lanes_used = device lanes` the
/// fully vectorized one.
pub fn dot_tile_lanes(
    m: &mut Machine,
    a: &[u8],
    b: &[u8],
    b_stride: usize,
    acc: &mut [i32],
    fully_unrolled: bool,
    lanes_used: u64,
) {
    let (ki, ni) = (a.len(), acc.len());
    if ki == 0 || ni == 0 {
        return;
    }
    dot_accumulate_u8(a, b, b_stride, acc);
    m.charge_macs_lanes((ki * ni) as u64, fully_unrolled, lanes_used);
    if lanes_used > 1 {
        // Fixed per-tile register packing setup (SXTB16 widening /
        // predication), explicit here because the im2col matmul issues
        // one packed tile per call; the direct kernels fold steady-state
        // packing into `mac_cycles_x100`.
        m.charge_cycles(m.device.cost.simd.packing_cycles);
    }
}

/// `Broadcast`: fills a register row with a value (PKHBT-style splat),
/// charged one cycle per 4 lanes.
pub fn broadcast(m: &mut Machine, dst: &mut [i32], value: i32) {
    dst.fill(value);
    m.charge_cycles((dst.len() as u64).div_ceil(4));
}

/// Requantizes a row of int32 accumulators to int8 with a fused
/// activation clamp, charging the epilogue cost.
///
/// # Panics
///
/// Panics if `acc` and `out` have different lengths.
pub fn requant_row(m: &mut Machine, acc: &[i32], rq: Requant, clamp: (i8, i8), out: &mut [u8]) {
    assert_eq!(acc.len(), out.len(), "requant row length mismatch");
    for (o, &a) in out.iter_mut().zip(acc) {
        *o = rq.apply_clamped(a, clamp) as u8;
    }
    m.charge_requant(acc.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;

    fn machine() -> Machine {
        Machine::new(Device::stm32_f767zi())
    }

    #[test]
    fn dot_tile_computes_gemm_tile() {
        let mut m = machine();
        // a = [1, 2], b = [[3, 4], [5, 6]] (stride 2): acc = [13, 16]
        let a = [1i8, 2];
        let b = [3i8, 4, 5, 6];
        let mut acc = [0i32; 2];
        dot_tile(&mut m, &a, &b, 2, &mut acc, true);
        assert_eq!(acc, [13, 16]);
        assert_eq!(m.counters.macs, 4);
    }

    #[test]
    fn dot_tile_accumulates() {
        let mut m = machine();
        let mut acc = [10i32];
        dot_tile(&mut m, &[2], &[3], 1, &mut acc, true);
        assert_eq!(acc, [16]);
    }

    #[test]
    fn dot_tile_respects_stride() {
        let mut m = machine();
        // b laid out with stride 3 but only 2 used lanes.
        let b = [1i8, 2, 99, 4, 5, 99];
        let mut acc = [0i32; 2];
        dot_tile(&mut m, &[1, 1], &b, 3, &mut acc, false);
        assert_eq!(acc, [5, 7]);
    }

    #[test]
    #[should_panic(expected = "weight tile too small")]
    fn dot_tile_bounds_checked() {
        let mut m = machine();
        let mut acc = [0i32; 4];
        dot_tile(&mut m, &[1, 1], &[0; 4], 4, &mut acc, true);
    }

    #[test]
    fn partial_unroll_charges_more() {
        let mut m1 = machine();
        let mut m2 = machine();
        let a = [1i8; 32];
        let b = [1i8; 64];
        let mut acc = [0i32; 2];
        dot_tile(&mut m1, &a, &b, 2, &mut acc, true);
        let mut acc = [0i32; 2];
        dot_tile(&mut m2, &a, &b, 2, &mut acc, false);
        assert!(m2.counters.cycles > m1.counters.cycles);
        assert_eq!(m1.counters.macs, m2.counters.macs);
    }

    #[test]
    fn dot_tile_u8_is_bit_exact_and_cycle_identical_to_dot_tile() {
        // Deterministic pseudo-random contents; ragged ki exercises the
        // chunks_exact remainder path.
        for (ki, ni) in [(1, 1), (3, 2), (4, 4), (7, 5), (16, 2), (37, 3)] {
            let a: Vec<u8> = (0..ki).map(|i| (i * 37 + 11) as u8).collect();
            let b: Vec<u8> = (0..ki * ni).map(|i| (i * 91 + 5) as u8).collect();
            let a_i8: Vec<i8> = a.iter().map(|&v| v as i8).collect();
            let b_i8: Vec<i8> = b.iter().map(|&v| v as i8).collect();
            let mut m1 = machine();
            let mut m2 = machine();
            let mut acc1 = vec![7i32; ni];
            let mut acc2 = vec![7i32; ni];
            dot_tile(&mut m1, &a_i8, &b_i8, ni, &mut acc1, true);
            dot_tile_u8(&mut m2, &a, &b, ni, &mut acc2, true);
            assert_eq!(acc1, acc2, "ki={ki} ni={ni}");
            assert_eq!(m1.counters, m2.counters, "ki={ki} ni={ni}");
        }
    }

    #[test]
    fn dot_tile_lanes_native_width_matches_dot_tile_u8_plus_packing() {
        let a: Vec<u8> = (0..16u8).collect();
        let b: Vec<u8> = (0..32u8).collect();
        let mut base = machine();
        let mut lanes = machine();
        let mut acc1 = [0i32; 2];
        let mut acc2 = [0i32; 2];
        dot_tile_u8(&mut base, &a, &b, 2, &mut acc1, true);
        let native = base.device.cost.simd.lanes;
        dot_tile_lanes(&mut lanes, &a, &b, 2, &mut acc2, true, native);
        assert_eq!(acc1, acc2);
        assert_eq!(
            lanes.counters.cycles,
            base.counters.cycles + base.device.cost.simd.packing_cycles
        );
        assert_eq!(lanes.counters.macs, base.counters.macs);
    }

    #[test]
    fn scalar_lane_charging_costs_roughly_the_lane_ratio_more() {
        let a = [1u8; 64];
        let b = [2u8; 128];
        let mut scalar = machine();
        let mut vector = machine();
        let mut acc = [0i32; 2];
        dot_tile_lanes(&mut scalar, &a, &b, 2, &mut acc, true, 1);
        let mut acc = [0i32; 2];
        let native = vector.device.cost.simd.lanes;
        dot_tile_lanes(&mut vector, &a, &b, 2, &mut acc, true, native);
        let ratio = scalar.counters.cycles as f64 / vector.counters.cycles as f64;
        assert!(ratio >= 1.8, "scalar/vector cycle ratio {ratio} < 1.8");
    }

    #[test]
    fn broadcast_fills_and_charges() {
        let mut m = machine();
        let mut regs = [0i32; 8];
        broadcast(&mut m, &mut regs, -7);
        assert!(regs.iter().all(|&v| v == -7));
        assert_eq!(m.counters.cycles, 2);
    }

    #[test]
    fn requant_row_matches_scalar_path() {
        let mut m = machine();
        let rq = Requant::from_scale(0.25, 3);
        let acc = [100, -100, 0, 1000];
        let mut out = [0u8; 4];
        requant_row(&mut m, &acc, rq, (-128, 127), &mut out);
        for (i, &a) in acc.iter().enumerate() {
            assert_eq!(out[i] as i8, rq.apply(a));
        }
        assert_eq!(m.counters.cycles, 4 * REQUANT_CYCLES_PER_ELEM);
    }
}
