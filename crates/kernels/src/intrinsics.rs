//! The vMCU intrinsic layer (§6.1), executing on the simulated machine.
//!
//! The paper exposes seven intrinsics to kernel developers; their data
//! movement (`RAMLoad`, `FlashLoad`, `RAMStore`, `RAMFree`) maps to
//! [`vmcu_pool::SegmentPool`] / [`vmcu_sim::Machine`] operations. This
//! module implements the compute intrinsics:
//!
//! * [`dot_tile`] — the `Dot` fixed-size int8 matmul micro-kernel
//!   (`SXTB16` + `SMLAD` on ARM, 2 MACs per instruction);
//! * [`broadcast`] — register splat (`PKHBT` on ARM);
//! * [`requant_row`] — the int32→int8 epilogue shared with the reference
//!   operators, charged at a few cycles per element.

use vmcu_sim::Machine;
use vmcu_tensor::Requant;

/// Cycles charged per element for the requantization epilogue
/// (multiply-high + rounding shift + saturate).
pub const REQUANT_CYCLES_PER_ELEM: u64 = 3;

/// `Dot`: `acc[n] += Σ_k a[k] · b[k·b_stride + n]` for `n < acc.len()`,
/// `k < a.len()` — an `a.len()`-deep reduction into `acc.len()` lanes,
/// charged as packed-SIMD MACs.
///
/// `fully_unrolled` selects the pipeline-stall model: vMCU kernels fully
/// unroll their innermost reduction loops, the TinyEngine baseline unrolls
/// to a fixed depth (§7.2).
///
/// # Panics
///
/// Panics if `b` is too short for the access pattern.
pub fn dot_tile(
    m: &mut Machine,
    a: &[i8],
    b: &[i8],
    b_stride: usize,
    acc: &mut [i32],
    fully_unrolled: bool,
) {
    let ki = a.len();
    let ni = acc.len();
    if ki == 0 || ni == 0 {
        return;
    }
    assert!(
        (ki - 1) * b_stride + ni <= b.len(),
        "weight tile too small: need {} have {}",
        (ki - 1) * b_stride + ni,
        b.len()
    );
    for (k, &av) in a.iter().enumerate() {
        let row = &b[k * b_stride..k * b_stride + ni];
        for (n, accv) in acc.iter_mut().enumerate() {
            *accv += i32::from(av) * i32::from(row[n]);
        }
    }
    m.charge_macs((ki * ni) as u64, fully_unrolled);
}

/// `Broadcast`: fills a register row with a value (PKHBT-style splat),
/// charged one cycle per 4 lanes.
pub fn broadcast(m: &mut Machine, dst: &mut [i32], value: i32) {
    dst.fill(value);
    m.charge_cycles((dst.len() as u64).div_ceil(4));
}

/// Requantizes a row of int32 accumulators to int8 with a fused
/// activation clamp, charging the epilogue cost.
pub fn requant_row(m: &mut Machine, acc: &[i32], rq: Requant, clamp: (i8, i8), out: &mut [u8]) {
    assert_eq!(acc.len(), out.len(), "requant row length mismatch");
    for (o, &a) in out.iter_mut().zip(acc) {
        *o = rq.apply_clamped(a, clamp) as u8;
    }
    m.charge_cycles(acc.len() as u64 * REQUANT_CYCLES_PER_ELEM);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcu_sim::Device;

    fn machine() -> Machine {
        Machine::new(Device::stm32_f767zi())
    }

    #[test]
    fn dot_tile_computes_gemm_tile() {
        let mut m = machine();
        // a = [1, 2], b = [[3, 4], [5, 6]] (stride 2): acc = [13, 16]
        let a = [1i8, 2];
        let b = [3i8, 4, 5, 6];
        let mut acc = [0i32; 2];
        dot_tile(&mut m, &a, &b, 2, &mut acc, true);
        assert_eq!(acc, [13, 16]);
        assert_eq!(m.counters.macs, 4);
    }

    #[test]
    fn dot_tile_accumulates() {
        let mut m = machine();
        let mut acc = [10i32];
        dot_tile(&mut m, &[2], &[3], 1, &mut acc, true);
        assert_eq!(acc, [16]);
    }

    #[test]
    fn dot_tile_respects_stride() {
        let mut m = machine();
        // b laid out with stride 3 but only 2 used lanes.
        let b = [1i8, 2, 99, 4, 5, 99];
        let mut acc = [0i32; 2];
        dot_tile(&mut m, &[1, 1], &b, 3, &mut acc, false);
        assert_eq!(acc, [5, 7]);
    }

    #[test]
    #[should_panic(expected = "weight tile too small")]
    fn dot_tile_bounds_checked() {
        let mut m = machine();
        let mut acc = [0i32; 4];
        dot_tile(&mut m, &[1, 1], &[0; 4], 4, &mut acc, true);
    }

    #[test]
    fn partial_unroll_charges_more() {
        let mut m1 = machine();
        let mut m2 = machine();
        let a = [1i8; 32];
        let b = [1i8; 64];
        let mut acc = [0i32; 2];
        dot_tile(&mut m1, &a, &b, 2, &mut acc, true);
        let mut acc = [0i32; 2];
        dot_tile(&mut m2, &a, &b, 2, &mut acc, false);
        assert!(m2.counters.cycles > m1.counters.cycles);
        assert_eq!(m1.counters.macs, m2.counters.macs);
    }

    #[test]
    fn broadcast_fills_and_charges() {
        let mut m = machine();
        let mut regs = [0i32; 8];
        broadcast(&mut m, &mut regs, -7);
        assert!(regs.iter().all(|&v| v == -7));
        assert_eq!(m.counters.cycles, 2);
    }

    #[test]
    fn requant_row_matches_scalar_path() {
        let mut m = machine();
        let rq = Requant::from_scale(0.25, 3);
        let acc = [100, -100, 0, 1000];
        let mut out = [0u8; 4];
        requant_row(&mut m, &acc, rq, (-128, 127), &mut out);
        for (i, &a) in acc.iter().enumerate() {
            assert_eq!(out[i] as i8, rq.apply(a));
        }
        assert_eq!(m.counters.cycles, 4 * REQUANT_CYCLES_PER_ELEM);
    }
}
