//! im2col + matmul lowering for conv2d and fully-connected layers.
//!
//! The TinyEngine-style alternative to the direct segment-aware kernels:
//! each output pixel's receptive field is first *gathered* into a dense
//! staging patch in workspace RAM (charged as real RAM-to-RAM copy
//! traffic — the cost §7.2 of the paper attributes the baselines' energy
//! gap to), then the layer reduces to a plain GEMM driven through the
//! lane-blocked [`dot_tile_lanes`] micro-kernel. Padding positions are
//! zero-filled in the patch, so the GEMM is unconditional: no boundary
//! branches in the inner loop, which is exactly what lets a compiler (or
//! the vectorized codegen) keep the SIMD pipeline full.
//!
//! The lowering keeps the **same pool store/free order** as the direct
//! kernels — output segments are produced pixel-major and input rows are
//! retired by the shared [`free_upto`](crate::conv2d) schedule — so the
//! planner offsets [`conv2d_exec_distance`](crate::conv2d::conv2d_exec_distance)
//! and [`fc_exec_distance`](crate::fc::fc_exec_distance) apply unchanged,
//! and outputs are bit-exact with the direct kernels (integer accumulation
//! commutes; zero-filled taps contribute nothing).
//!
//! `lanes_used` selects the pricing of the GEMM: `1` is the scalar
//! lowering a capability-unaware compiler emits, `device.cost.simd.lanes`
//! the fully vectorized one. [`native_lanes`] picks the latter.

use crate::conv2d::free_upto;
use crate::intrinsics::{broadcast, dot_tile_lanes, requant_row};
use crate::params::{Conv2dParams, FcParams};
use vmcu_pool::{PoolError, SegmentPool};
use vmcu_sim::Machine;

/// Workspace bytes the conv2d im2col lowering stages one patch in
/// (`R·S·C`: the dense receptive field of one output pixel).
pub fn conv2d_im2col_workspace_bytes(p: &Conv2dParams) -> usize {
    p.r * p.s * p.c
}

/// Workspace bytes the fc im2col lowering stages one input row in (`K`).
pub fn fc_im2col_workspace_bytes(p: &FcParams) -> usize {
    p.k
}

/// The device's full SIMD width — the lane count the vectorized lowering
/// drives [`dot_tile_lanes`] at.
pub fn native_lanes(m: &Machine) -> u64 {
    m.device.cost.simd.lanes
}

/// Runs conv2d as im2col + matmul. Same tensor layout and pool contract
/// as [`run_conv2d`](crate::conv2d::run_conv2d); `ws_base` names
/// [`conv2d_im2col_workspace_bytes`] bytes of staging RAM outside the
/// pool window.
///
/// MACs counted include the zero-filled padding taps (the GEMM is dense),
/// so they exceed [`Conv2dParams::macs`] whenever `pad > 0`.
///
/// # Errors
///
/// Propagates pool violations and memory errors.
///
/// # Panics
///
/// Panics if `bias` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn run_conv2d_im2col(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &Conv2dParams,
    b_in: i64,
    b_out: i64,
    w_base: usize,
    bias: Option<&[i32]>,
    ws_base: usize,
    lanes_used: u64,
) -> Result<(), PoolError> {
    if let Some(b) = bias {
        assert_eq!(b.len(), p.k, "bias length mismatch");
    }
    let seg = p.seg;
    let (p_out, q_out) = (p.out_h(), p.out_w());
    let patch_len = p.r * p.s * p.c;
    let zeros = vec![0u8; p.c];
    let mut chan = vec![0u8; p.c];
    let mut a_reg = vec![0u8; seg];
    let mut w_tile = vec![0u8; seg * seg];
    let mut acc = vec![0i32; seg];
    let mut out_reg = vec![0u8; seg];
    let mut next_free = 0usize;
    for pi in 0..p_out {
        for qi in 0..q_out {
            // im2col gather: copy the receptive field into the staging
            // patch, zero-filling taps that fall into the padding halo.
            // Every byte is real RAM-to-RAM traffic (pool read + RAM
            // write), which is the cost this lowering pays for its
            // branch-free GEMM.
            for ri in 0..p.r {
                let y = (pi * p.stride + ri) as isize - p.pad as isize;
                for si in 0..p.s {
                    let x = (qi * p.stride + si) as isize - p.pad as isize;
                    let dst = ws_base + (ri * p.s + si) * p.c;
                    if y < 0 || y >= p.h as isize || x < 0 || x >= p.w as isize {
                        m.ram_store(dst, &zeros)?;
                    } else {
                        let src = ((y as usize * p.w + x as usize) * p.c) as i64;
                        pool.load(m, b_in + src, &mut chan)?;
                        m.ram_store(dst, &chan)?;
                    }
                }
            }
            m.charge_branches(1);
            // Matmul over the dense patch: weights `[R,S,C,K]` are row-for-
            // row the patch's layout, so full-width output tiles stream the
            // weight rows as one burst.
            let mut k0 = 0;
            while k0 < p.k {
                let kw = seg.min(p.k - k0);
                broadcast(m, &mut acc[..kw], 0);
                if let Some(b) = bias {
                    for (a, &bv) in acc[..kw].iter_mut().zip(&b[k0..k0 + kw]) {
                        *a = bv;
                    }
                }
                let mut j0 = 0;
                while j0 < patch_len {
                    let jw = seg.min(patch_len - j0);
                    m.ram_load(ws_base + j0, &mut a_reg[..jw])?;
                    if kw == p.k {
                        m.flash_load(w_base + j0 * p.k, &mut w_tile[..jw * kw])?;
                    } else {
                        for jj in 0..jw {
                            let row = w_base + (j0 + jj) * p.k + k0;
                            m.flash_load(row, &mut w_tile[jj * kw..jj * kw + kw])?;
                        }
                    }
                    dot_tile_lanes(
                        m,
                        &a_reg[..jw],
                        &w_tile[..jw * kw],
                        kw,
                        &mut acc[..kw],
                        true,
                        lanes_used,
                    );
                    m.charge_branches(1);
                    j0 += jw;
                }
                requant_row(m, &acc[..kw], p.rq, p.clamp, &mut out_reg[..kw]);
                pool.store(
                    m,
                    &out_reg[..kw],
                    b_out + ((pi * q_out + qi) * p.k + k0) as i64,
                )?;
                m.charge_branches(1);
                k0 += kw;
            }
        }
        let upto = free_upto(p, pi);
        if upto > next_free {
            pool.free(
                b_in + (next_free * p.w * p.c) as i64,
                (upto - next_free) * p.w * p.c,
            )?;
            next_free = upto;
        }
        m.charge_branches(1);
    }
    Ok(())
}

/// Runs the fully-connected layer with its input row staged through
/// workspace RAM and the GEMM driven through [`dot_tile_lanes`]. Same
/// tensor layout and pool contract as [`run_fc`](crate::fc::run_fc);
/// `ws_base` names [`fc_im2col_workspace_bytes`] bytes of staging RAM.
///
/// # Errors
///
/// Propagates pool violations and memory errors.
///
/// # Panics
///
/// Panics if `bias` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn run_fc_im2col(
    m: &mut Machine,
    pool: &mut SegmentPool,
    p: &FcParams,
    b_in: i64,
    b_out: i64,
    w_base: usize,
    bias: Option<&[i32]>,
    ws_base: usize,
    lanes_used: u64,
) -> Result<(), PoolError> {
    if let Some(b) = bias {
        assert_eq!(b.len(), p.n, "bias length mismatch");
    }
    let seg = p.seg;
    let mut a_reg = vec![0u8; seg];
    let mut w_tile = vec![0u8; seg * seg];
    let mut acc = vec![0i32; seg];
    let mut out_reg = vec![0u8; seg];
    for mi in 0..p.m {
        // Stage the input row once per row (RAM-to-RAM), instead of
        // re-loading it from the pool per output tile.
        let mut off = 0;
        while off < p.k {
            let kw = seg.min(p.k - off);
            pool.load(m, b_in + (mi * p.k + off) as i64, &mut a_reg[..kw])?;
            m.ram_store(ws_base + off, &a_reg[..kw])?;
            off += kw;
        }
        m.charge_branches(1);
        let mut n0 = 0;
        while n0 < p.n {
            let nw = seg.min(p.n - n0);
            broadcast(m, &mut acc[..nw], 0);
            if let Some(b) = bias {
                for (a, &bv) in acc[..nw].iter_mut().zip(&b[n0..n0 + nw]) {
                    *a = bv;
                }
            }
            let mut k0 = 0;
            while k0 < p.k {
                let kw = seg.min(p.k - k0);
                m.ram_load(ws_base + k0, &mut a_reg[..kw])?;
                if nw == p.n {
                    m.flash_load(w_base + k0 * p.n, &mut w_tile[..kw * nw])?;
                } else {
                    for kk in 0..kw {
                        let row = w_base + (k0 + kk) * p.n + n0;
                        m.flash_load(row, &mut w_tile[kk * nw..kk * nw + nw])?;
                    }
                }
                dot_tile_lanes(
                    m,
                    &a_reg[..kw],
                    &w_tile[..kw * nw],
                    nw,
                    &mut acc[..nw],
                    true,
                    lanes_used,
                );
                m.charge_branches(1);
                k0 += kw;
            }
            requant_row(m, &acc[..nw], p.rq, p.clamp, &mut out_reg[..nw]);
            pool.store(m, &out_reg[..nw], b_out + (mi * p.n + n0) as i64)?;
            m.charge_branches(1);
            n0 += nw;
        }
        pool.free(b_in + (mi * p.k) as i64, p.k)?;
        m.charge_branches(1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv2d::{conv2d_exec_distance, run_conv2d};
    use crate::fc::{fc_exec_distance, run_fc};
    use vmcu_sim::Device;
    use vmcu_tensor::{random, Requant, Tensor};

    fn conv_case(d: Device, p: &Conv2dParams, lanes: u64) -> (Tensor<i8>, Machine) {
        let mut m = Machine::new(d);
        let input = random::tensor_i8(&[p.h, p.w, p.c], 31);
        let weight = random::tensor_i8(&[p.r, p.s, p.c, p.k], 32);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let dist = conv2d_exec_distance(p);
        let used = dist.max(0) as usize;
        let window = (p.in_bytes() + used).max(p.out_bytes());
        let ws = window; // staging patch right after the pool window
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_conv2d_im2col(&mut m, &mut pool, p, 0, -dist, w_base, None, ws, lanes).unwrap();
        let out = pool.host_read(&m, -dist, p.out_bytes()).unwrap();
        (Tensor::from_bytes(&[p.out_h(), p.out_w(), p.k], &out), m)
    }

    fn conv_direct(p: &Conv2dParams) -> (Tensor<i8>, Machine) {
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[p.h, p.w, p.c], 31);
        let weight = random::tensor_i8(&[p.r, p.s, p.c, p.k], 32);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let dist = conv2d_exec_distance(p);
        let window = (p.in_bytes() + dist.max(0) as usize).max(p.out_bytes());
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_conv2d(&mut m, &mut pool, p, 0, -dist, w_base, None).unwrap();
        let out = pool.host_read(&m, -dist, p.out_bytes()).unwrap();
        (Tensor::from_bytes(&[p.out_h(), p.out_w(), p.k], &out), m)
    }

    #[test]
    fn conv2d_im2col_is_bit_exact_with_the_direct_kernel() {
        for p in [
            Conv2dParams::new(6, 6, 4, 4, 3, 3, 1, 1, Requant::from_scale(1.0 / 64.0, 0)),
            Conv2dParams::new(7, 7, 3, 5, 3, 3, 1, 0, Requant::from_scale(1.0 / 32.0, 2)),
            Conv2dParams::new(8, 8, 4, 6, 3, 3, 2, 1, Requant::from_scale(1.0 / 64.0, -3)),
        ] {
            let (direct, _) = conv_direct(&p);
            for d in Device::simd_ladder() {
                let lanes = d.cost.simd.lanes;
                let (scalar, _) = conv_case(d.clone(), &p, 1);
                let (vector, _) = conv_case(d, &p, lanes);
                assert_eq!(scalar, direct);
                assert_eq!(vector, direct);
            }
        }
    }

    #[test]
    fn vectorized_im2col_beats_scalar_on_dsp_cores() {
        let p = Conv2dParams::new(8, 8, 8, 8, 3, 3, 1, 1, Requant::from_scale(1.0 / 64.0, 0));
        for d in [
            Device::stm32_f411re(),
            Device::stm32_f767zi(),
            Device::mps3_an547(),
        ] {
            let lanes = d.cost.simd.lanes;
            let (_, scalar) = conv_case(d.clone(), &p, 1);
            let (_, vector) = conv_case(d, &p, lanes);
            assert_eq!(scalar.counters.macs, vector.counters.macs);
            assert!(
                scalar.counters.cycles > vector.counters.cycles,
                "vectorization must win cycles"
            );
        }
    }

    #[test]
    fn im2col_pays_ram_traffic_the_direct_kernel_avoids() {
        let p = Conv2dParams::new(8, 8, 8, 8, 3, 3, 1, 1, Requant::from_scale(1.0 / 64.0, 0));
        let (_, direct) = conv_direct(&p);
        let (_, im2col) = conv_case(Device::stm32_f411re(), &p, 2);
        assert!(im2col.counters.ram_write_bytes > direct.counters.ram_write_bytes);
    }

    #[test]
    fn dense_gemm_counts_padding_taps() {
        let p = Conv2dParams::new(6, 6, 4, 4, 3, 3, 1, 1, Requant::from_scale(1.0 / 64.0, 0));
        let (_, m) = conv_case(Device::stm32_f411re(), &p, 2);
        let dense = (p.out_h() * p.out_w() * p.r * p.s * p.c * p.k) as u64;
        assert_eq!(m.counters.macs, dense);
        assert!(dense > p.macs());
    }

    fn fc_case(d: Device, p: &FcParams, lanes: u64) -> (Tensor<i8>, Machine) {
        let mut m = Machine::new(d);
        let input = random::tensor_i8(&[p.m, p.k], 11);
        let weight = random::tensor_i8(&[p.k, p.n], 22);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let dist = fc_exec_distance(p);
        let window = (p.in_bytes() + dist.max(0) as usize).max(p.out_bytes());
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_fc_im2col(&mut m, &mut pool, p, 0, -dist, w_base, None, window, lanes).unwrap();
        let out = pool.host_read(&m, -dist, p.out_bytes()).unwrap();
        (Tensor::from_bytes(&[p.m, p.n], &out), m)
    }

    #[test]
    fn fc_im2col_is_bit_exact_with_the_direct_kernel() {
        for p in [
            FcParams::new(6, 8, 8, Requant::from_scale(1.0 / 32.0, 0)),
            FcParams::new(3, 12, 5, Requant::from_scale(1.0 / 64.0, -2)),
        ] {
            let mut m = Machine::new(Device::stm32_f411re());
            let input = random::tensor_i8(&[p.m, p.k], 11);
            let weight = random::tensor_i8(&[p.k, p.n], 22);
            let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
            let dist = fc_exec_distance(&p);
            let window = (p.in_bytes() + dist.max(0) as usize).max(p.out_bytes());
            let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
            pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
            run_fc(&mut m, &mut pool, &p, 0, -dist, w_base, None).unwrap();
            let direct = Tensor::from_bytes(
                &[p.m, p.n],
                &pool.host_read(&m, -dist, p.out_bytes()).unwrap(),
            );
            for d in Device::simd_ladder() {
                let lanes = d.cost.simd.lanes;
                let (out, _) = fc_case(d, &p, lanes);
                assert_eq!(out, direct);
            }
        }
    }

    #[test]
    fn fc_staging_cuts_pool_reloads() {
        // The direct kernel re-loads the input row from the (modulo-
        // checked) pool once per output tile; the staged GEMM touches the
        // pool exactly once per row, so it performs fewer boundary checks.
        // N spans four segment tiles, so the direct kernel re-loads each
        // input row four times where the staged GEMM loads it once.
        let p = FcParams::new(4, 8, 32, Requant::from_scale(1.0 / 32.0, 0));
        let mut m = Machine::new(Device::stm32_f411re());
        let input = random::tensor_i8(&[p.m, p.k], 11);
        let weight = random::tensor_i8(&[p.k, p.n], 22);
        let w_base = m.host_program_flash(&weight.as_bytes()).unwrap();
        let dist = fc_exec_distance(&p);
        let window = (p.in_bytes() + dist.max(0) as usize).max(p.out_bytes());
        let mut pool = SegmentPool::new(&m, 0, window, p.seg).unwrap();
        pool.host_fill_live(&mut m, 0, &input.as_bytes()).unwrap();
        run_fc(&mut m, &mut pool, &p, 0, -dist, w_base, None).unwrap();
        let (_, staged) = fc_case(Device::stm32_f411re(), &p, 2);
        assert!(staged.counters.modulo_ops < m.counters.modulo_ops);
    }
}
